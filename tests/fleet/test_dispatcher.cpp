// Dispatcher unit tests against scripted fake workers: capacity limits,
// least-loaded dispatch, detach re-queue, straggler duplication with
// first-result-wins dedup, elastic attach, substrate filtering and shutdown.
// The push side is a plain lambda recording WORK lines, so every test drives
// the protocol edge directly without sockets.

#include "fleet/dispatcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/param_space.hpp"

namespace fleet = harmony::fleet;
using harmony::Config;
using harmony::ParamSpace;
using harmony::Parameter;

namespace {

ParamSpace make_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 100));
  return space;
}

/// Extract the work id from a "WORK <id> ...\n" payload.
std::uint64_t work_id_of(std::string_view payload) {
  EXPECT_EQ(payload.substr(0, 5), "WORK ");
  return std::strtoull(std::string(payload.substr(5)).c_str(), nullptr, 10);
}

/// Scripted worker: records pushed WORK ids; the test answers manually.
struct FakeWorker {
  std::mutex mutex;
  std::vector<std::uint64_t> received;
  std::uint64_t id = 0;  // assigned by attach()

  harmony::WorkSink::PushFn push() {
    return [this](std::string_view payload) {
      const std::lock_guard<std::mutex> lock(mutex);
      received.push_back(work_id_of(payload));
      return true;
    };
  }

  std::vector<std::uint64_t> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return received;
  }
};

/// Run a batch of n distinct configs on a background thread.
struct BatchRun {
  std::thread thread;
  std::vector<harmony::EvalOutcome> out;

  BatchRun(fleet::Dispatcher& d, const ParamSpace& space, int n) {
    std::vector<Config> batch;
    for (int i = 0; i < n; ++i) {
      Config c = space.default_config();
      space.set(c, "x", static_cast<std::int64_t>(i));
      batch.push_back(c);
    }
    thread = std::thread([this, &d, batch] { out = d.run_batch(batch); });
  }
  ~BatchRun() {
    if (thread.joinable()) thread.join();
  }
  void join() { thread.join(); }
};

/// Poll until `fn` is true or ~2s elapse.
template <typename Fn>
bool eventually(Fn fn) {
  for (int i = 0; i < 400; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

TEST(Dispatcher, RespectsCapacityAndPipelinesRefills) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker w;
  w.id = d.attach("synthetic", 2, w.push());

  BatchRun run(d, space, 5);
  ASSERT_TRUE(eventually([&] { return w.snapshot().size() == 2; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(w.snapshot().size(), 2u);  // capacity 2: no third push yet

  // Each RESULT frees one slot and pulls exactly one queued item.
  auto ids = w.snapshot();
  EXPECT_TRUE(d.on_result(w.id, ids[0], true, 10.0, 0.001));
  ASSERT_TRUE(eventually([&] { return w.snapshot().size() == 3; }));
  for (std::size_t i = 1; i < 5; ++i) {
    ids = w.snapshot();
    EXPECT_TRUE(d.on_result(w.id, ids[i], true, 10.0 + i, 0.001));
  }
  run.join();

  ASSERT_EQ(run.out.size(), 5u);
  for (const auto& o : run.out) {
    EXPECT_TRUE(o.result.valid);
    EXPECT_TRUE(o.ran);
  }
  // Results land in the slot their work id was created for (batch order).
  EXPECT_DOUBLE_EQ(run.out[0].result.objective, 10.0);
  EXPECT_DOUBLE_EQ(run.out[4].result.objective, 14.0);
  const auto stats = d.stats();
  EXPECT_EQ(stats.dispatched, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.requeued, 0u);
}

TEST(Dispatcher, SpreadsAcrossLeastLoadedWorkers) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker a;
  FakeWorker b;
  a.id = d.attach("synthetic", 4, a.push());
  b.id = d.attach("synthetic", 4, b.push());
  EXPECT_EQ(d.worker_count(), 2u);
  EXPECT_EQ(d.total_capacity(), 8u);

  BatchRun run(d, space, 4);
  ASSERT_TRUE(eventually(
      [&] { return a.snapshot().size() + b.snapshot().size() == 4; }));
  // Least-loaded assignment alternates: two each, not four on the first.
  EXPECT_EQ(a.snapshot().size(), 2u);
  EXPECT_EQ(b.snapshot().size(), 2u);

  for (const auto id : a.snapshot()) d.on_result(a.id, id, true, 1.0, 0.0);
  for (const auto id : b.snapshot()) d.on_result(b.id, id, true, 2.0, 0.0);
  run.join();
  for (const auto& o : run.out) EXPECT_TRUE(o.result.valid);
}

TEST(Dispatcher, DetachRequeuesInFlightWork) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker a;
  a.id = d.attach("synthetic", 2, a.push());

  BatchRun run(d, space, 2);
  ASSERT_TRUE(eventually([&] { return a.snapshot().size() == 2; }));

  // The worker dies holding both items; a healthy worker joins and the
  // re-queued items re-dispatch onto it.
  d.detach(a.id);
  EXPECT_EQ(d.worker_count(), 0u);
  FakeWorker b;
  b.id = d.attach("synthetic", 2, b.push());
  ASSERT_TRUE(eventually([&] { return b.snapshot().size() == 2; }));
  for (const auto id : b.snapshot()) d.on_result(b.id, id, true, 3.0, 0.0);
  run.join();

  for (const auto& o : run.out) {
    EXPECT_TRUE(o.result.valid);
    EXPECT_DOUBLE_EQ(o.result.objective, 3.0);
  }
  const auto stats = d.stats();
  EXPECT_EQ(stats.requeued, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.dispatched, 4u);  // 2 original + 2 re-dispatched
}

TEST(Dispatcher, StragglerDuplicatesAndFirstResultWins) {
  const auto space = make_space();
  fleet::DispatcherOptions opts;
  opts.straggler_timeout = std::chrono::milliseconds(30);
  fleet::Dispatcher d(space, opts);
  FakeWorker slow;
  FakeWorker fast;
  slow.id = d.attach("synthetic", 1, slow.push());

  BatchRun run(d, space, 1);
  ASSERT_TRUE(eventually([&] { return slow.snapshot().size() == 1; }));
  const std::uint64_t id = slow.snapshot()[0];

  // A free worker appears; after the timeout the item is duplicated onto it.
  fast.id = d.attach("synthetic", 1, fast.push());
  ASSERT_TRUE(eventually([&] { return !fast.snapshot().empty(); }));
  EXPECT_EQ(fast.snapshot()[0], id);
  EXPECT_GE(d.stats().redispatched, 1u);

  // Fast answers first and wins; the slow duplicate is dropped on arrival.
  EXPECT_TRUE(d.on_result(fast.id, id, true, 7.0, 0.0));
  run.join();
  ASSERT_EQ(run.out.size(), 1u);
  EXPECT_DOUBLE_EQ(run.out[0].result.objective, 7.0);

  EXPECT_TRUE(d.on_result(slow.id, id, true, 99.0, 0.0));  // late duplicate
  const auto stats = d.stats();
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(run.out[0].result.objective, 7.0);  // winner unchanged
}

TEST(Dispatcher, ElasticAttachPullsQueuedWork) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker a;
  a.id = d.attach("synthetic", 1, a.push());

  BatchRun run(d, space, 3);  // 1 in flight on a, 2 queued
  ASSERT_TRUE(eventually([&] { return a.snapshot().size() == 1; }));

  // Mid-batch join: the new worker immediately drains the queue.
  FakeWorker b;
  b.id = d.attach("synthetic", 2, b.push());
  ASSERT_TRUE(eventually([&] { return b.snapshot().size() == 2; }));

  d.on_result(a.id, a.snapshot()[0], true, 1.0, 0.0);
  for (const auto id : b.snapshot()) d.on_result(b.id, id, true, 2.0, 0.0);
  run.join();
  for (const auto& o : run.out) EXPECT_TRUE(o.result.valid);
}

TEST(Dispatcher, SubstrateFilterGatesDispatchAndCounts) {
  const auto space = make_space();
  fleet::DispatcherOptions opts;
  opts.substrate = "gs2";
  fleet::Dispatcher d(space, opts);
  FakeWorker wrong;
  wrong.id = d.attach("pop", 4, wrong.push());

  EXPECT_FALSE(d.wait_for_workers(1, std::chrono::milliseconds(50)));
  EXPECT_EQ(d.total_capacity(), 0u);

  FakeWorker right;
  right.id = d.attach("gs2", 1, right.push());
  EXPECT_TRUE(d.wait_for_workers(1, std::chrono::milliseconds(1000)));

  BatchRun run(d, space, 1);
  ASSERT_TRUE(eventually([&] { return right.snapshot().size() == 1; }));
  EXPECT_TRUE(wrong.snapshot().empty());  // filtered worker never sees work
  d.on_result(right.id, right.snapshot()[0], true, 5.0, 0.0);
  run.join();
  EXPECT_DOUBLE_EQ(run.out[0].result.objective, 5.0);
}

TEST(Dispatcher, FailResultsAreChargedButInvalid) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker w;
  w.id = d.attach("synthetic", 1, w.push());

  BatchRun run(d, space, 1);
  ASSERT_TRUE(eventually([&] { return w.snapshot().size() == 1; }));
  EXPECT_TRUE(d.on_result(w.id, w.snapshot()[0], /*ok=*/false, 0.0, 0.002));
  run.join();

  EXPECT_FALSE(run.out[0].result.valid);
  EXPECT_TRUE(run.out[0].ran);  // a failed run still charges the budget
  EXPECT_DOUBLE_EQ(run.out[0].cost_s, 0.002);
  EXPECT_EQ(d.stats().failed, 1u);
}

TEST(Dispatcher, RejectsResultsForUnissuedIds) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  FakeWorker w;
  w.id = d.attach("synthetic", 1, w.push());
  EXPECT_FALSE(d.on_result(w.id, 0, true, 1.0, 0.0));
  EXPECT_FALSE(d.on_result(w.id, 12345, true, 1.0, 0.0));
}

TEST(Dispatcher, ShutdownFailsOutstandingBatch) {
  const auto space = make_space();
  fleet::Dispatcher d(space);  // no workers at all

  BatchRun run(d, space, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  d.shutdown();
  run.join();

  ASSERT_EQ(run.out.size(), 3u);
  for (const auto& o : run.out) {
    EXPECT_FALSE(o.result.valid);
    EXPECT_FALSE(o.ran);
  }
  // Further batches fail immediately instead of blocking.
  std::vector<Config> one{space.default_config()};
  const auto out = d.run_batch(one);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].result.valid);
}

}  // namespace
