// End-to-end client/server tuning: a GS2-style application connects to the
// Harmony server over TCP, registers its layout and resolution knobs, and is
// steered to a configuration much faster than its default — the deployment
// shape of paper Fig. 1.

#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/server.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/presets.hpp"

namespace {

using harmony::TuningClient;
using harmony::TuningServer;
using namespace minigs2;
namespace presets = simcluster::presets;

TEST(ServerTuningIntegration, Gs2LayoutOverTcp) {
  TuningServer server;
  ASSERT_TRUE(server.start());

  const Gs2Model model;
  const auto machine = presets::seaborg(8, 16);
  Resolution res;
  res.ntheta = 26;
  res.negrid = 16;

  std::vector<std::string> names;
  for (const auto& l : Layout::all()) names.push_back(l.order());

  TuningClient client;
  ASSERT_TRUE(client.connect(server.port(), "gs2"));
  ASSERT_TRUE(client.add_enum("layout", names));
  ASSERT_TRUE(client.start(60));

  const double t_default = model.run_time(machine, 128, res, Layout("lxyes"),
                                          CollisionModel::None, 10);
  while (auto config = client.fetch()) {
    const Layout layout(std::get<std::string>(config->values[0]));
    const double t =
        model.run_time(machine, 128, res, layout, CollisionModel::None, 10);
    ASSERT_TRUE(client.report(t));
  }
  const auto best = client.best();
  ASSERT_TRUE(best.has_value());
  const double t_best = model.run_time(machine, 128, res,
                                       Layout(std::get<std::string>(best->values[0])),
                                       CollisionModel::None, 10);
  EXPECT_LT(t_best, t_default / 1.5);
  client.bye();
  server.stop();
}

TEST(ServerTuningIntegration, MixedParameterSpaceOverTcp) {
  TuningServer server;
  ASSERT_TRUE(server.start());

  const Gs2Model model;
  TuningClient client;
  ASSERT_TRUE(client.connect(server.port(), "gs2-res"));
  ASSERT_TRUE(client.add_int("negrid", 8, 16));
  ASSERT_TRUE(client.add_int("ntheta", 16, 32, 2));
  ASSERT_TRUE(client.add_int("nodes", 1, 64));
  ASSERT_TRUE(client.start(50));

  double first = -1.0;
  double best_seen = 1e300;
  while (auto config = client.fetch()) {
    Resolution res;
    res.negrid = static_cast<int>(std::get<std::int64_t>(config->values[0]));
    res.ntheta = static_cast<int>(std::get<std::int64_t>(config->values[1]));
    const int nodes = static_cast<int>(std::get<std::int64_t>(config->values[2]));
    const auto machine = presets::xeon_myrinet(nodes, 2);
    const double t = model.run_time(machine, 2 * nodes, res, Layout("lxyes"),
                                    CollisionModel::None, 100);
    if (first < 0) first = t;
    best_seen = std::min(best_seen, t);
    ASSERT_TRUE(client.report(t));
  }
  EXPECT_LT(best_seen, first);
  client.bye();
  server.stop();
}

}  // namespace
