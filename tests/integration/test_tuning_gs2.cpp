// End-to-end reproduction of the paper's GS2 case study at test scale:
// layout tuning (Fig. 5), resolution/node tuning (Tables III/IV) and the
// systematic-sampling comparison (Fig. 6).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using namespace harmony;
using namespace minigs2;
namespace presets = simcluster::presets;

Resolution paper_res() {
  Resolution r;
  r.ntheta = 26;
  r.negrid = 16;
  return r;
}

TEST(TuningGs2Integration, LayoutSearchFindsVelocityLocalLayout) {
  const Gs2Model model;
  const auto machine = presets::seaborg(8, 16);
  const auto layouts = Layout::all();

  ParamSpace space;
  std::vector<std::string> names;
  names.reserve(layouts.size());
  for (const auto& l : layouts) names.push_back(l.order());
  space.add(Parameter::Enum("layout", names));

  const auto evaluate = [&](const Config& c) {
    EvaluationResult r;
    r.objective = model.run_time(machine, 128, paper_res(),
                                 Layout(std::get<std::string>(c.values[0])),
                                 CollisionModel::None, 10);
    return r;
  };
  Config start = space.default_config();
  space.set(start, "layout", std::string("lxyes"));
  const double t_default = evaluate(start).objective;

  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 4;
  NelderMead nm(space, nm_opts, start);
  TunerOptions topts;
  topts.max_iterations = 60;
  Tuner tuner(space, topts);
  const auto result = tuner.run(nm, evaluate);

  ASSERT_TRUE(result.best.has_value());
  const double speedup = t_default / result.best_result.objective;
  EXPECT_GT(speedup, 2.0);  // paper: 3.4x from lxyes
  const auto info = decompose(Layout(std::get<std::string>(result.best->values[0])),
                              paper_res(), 128);
  EXPECT_TRUE(info.l_local && info.e_local);
}

TEST(TuningGs2Integration, ResolutionAndNodesTuning) {
  // Table III/IV scenario: tune (negrid, ntheta, nodes) on the Linux
  // cluster with the default lxyes layout; large improvements expected.
  const Gs2Model model;

  ParamSpace space;
  space.add(Parameter::Integer("negrid", 8, 16));
  space.add(Parameter::Integer("ntheta", 16, 32, 2));
  space.add(Parameter::Integer("nodes", 1, 64));
  Config start = space.default_config();
  space.set(start, "negrid", std::int64_t{16});
  space.set(start, "ntheta", std::int64_t{26});
  space.set(start, "nodes", std::int64_t{32});

  const auto run_with = [&](const Config& c, int steps) {
    Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = presets::xeon_myrinet(nodes, 2);
    return model.run_time(machine, 2 * nodes, res, Layout("lxyes"),
                          CollisionModel::None, steps);
  };
  const double t_default = run_with(start, 1000);

  OfflineOptions oopts;
  oopts.short_run_steps = 1000;
  oopts.max_runs = 40;
  OfflineDriver driver(space, oopts);
  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  NelderMead nm(space, nm_opts, start);
  const auto result = driver.tune(nm, [&](const Config& c, int steps) {
    ShortRunResult r;
    r.measured_s = run_with(c, steps);
    return r;
  });

  ASSERT_TRUE(result.best.has_value());
  const double improvement = (t_default - result.best_measured_s) / t_default;
  EXPECT_GT(improvement, 0.4);  // paper: 83.5% for production runs
}

TEST(TuningGs2Integration, HarmonyWithinTopFractionOfSampledSpace) {
  // Fig. 6: systematic sampling of the whole space places the Harmony
  // result within the top 5% of configurations.
  const Gs2Model model;

  ParamSpace space;
  space.add(Parameter::Integer("negrid", 8, 16));
  space.add(Parameter::Integer("ntheta", 16, 32, 2));
  space.add(Parameter::Integer("nodes", 1, 64));

  const auto evaluate = [&](const Config& c) {
    Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = presets::xeon_myrinet(nodes, 2);
    EvaluationResult r;
    r.objective = model.run_time(machine, 2 * nodes, res, Layout("lxyes"),
                                 CollisionModel::None, 1000);
    return r;
  };

  // Systematic sample of the space.
  SystematicSampler sampler(space, std::vector<int>{5, 5, 16});
  TunerOptions sample_opts;
  sample_opts.max_iterations = 2000;
  sample_opts.max_proposals = 5000;
  sample_opts.use_cache = true;
  Tuner sample_tuner(space, sample_opts);
  (void)sample_tuner.run(sampler, evaluate);
  std::vector<double> sampled;
  for (const auto& e : sample_tuner.history().entries()) {
    if (!e.cached && e.result.valid) sampled.push_back(e.result.objective);
  }
  ASSERT_GE(sampled.size(), 100u);

  // Harmony search with a modest budget.
  Config start = space.default_config();
  space.set(start, "negrid", std::int64_t{16});
  space.set(start, "ntheta", std::int64_t{26});
  space.set(start, "nodes", std::int64_t{32});
  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  NelderMead nm(space, nm_opts, start);
  TunerOptions topts;
  topts.max_iterations = 60;
  Tuner tuner(space, topts);
  const auto result = tuner.run(nm, evaluate);
  ASSERT_TRUE(result.best.has_value());

  std::sort(sampled.begin(), sampled.end());
  const auto rank = static_cast<std::size_t>(
      std::lower_bound(sampled.begin(), sampled.end(),
                       result.best_result.objective) -
      sampled.begin());
  const double percentile = static_cast<double>(rank) / sampled.size();
  EXPECT_LT(percentile, 0.10);  // paper: top 5% of the sampled distribution
}

}  // namespace
