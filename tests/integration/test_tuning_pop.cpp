// End-to-end reproduction of the paper's POP case study at test scale:
// off-line iterative tuning of the runtime parameters (Tables I/II) and of
// the block size (Fig. 4).

#include <gtest/gtest.h>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using namespace harmony;
using namespace minipop;
namespace presets = simcluster::presets;

TEST(TuningPopIntegration, ParameterTuningRecoversPaperBand) {
  // Hockney, 32 CPUs (8 nodes x 4): tune num_iotasks + the categorical
  // parameters. Paper: 12.1% after 12 iterations, 16.7% after 27.
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = presets::hockney(8, 4);
  const auto space = make_param_space(32);
  const auto start = default_config(space);

  const auto evaluate = [&](const Config& c) {
    EvaluationResult r;
    r.objective =
        model.step_time(machine, 4, {180, 100}, evaluate_multipliers(space, c))
            .total_s;
    return r;
  };
  const double t_default = evaluate(start).objective;

  CoordinateDescent cd(space, start, 50);
  TunerOptions topts;
  topts.max_iterations = 300;
  Tuner tuner(space, topts);
  const auto result = tuner.run(cd, evaluate);

  ASSERT_TRUE(result.best.has_value());
  const double improvement =
      (t_default - result.best_result.objective) / t_default;
  EXPECT_GT(improvement, 0.10);
  EXPECT_LT(improvement, 0.30);
}

TEST(TuningPopIntegration, ImprovementTraceChangesOneParamAtATime) {
  // Table I's shape: a greedy trace where each improving iteration flips a
  // single parameter.
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = presets::hockney(8, 4);
  const auto space = make_param_space(32);
  const auto start = default_config(space);

  CoordinateDescent cd(space, start, 50);
  TunerOptions topts;
  topts.max_iterations = 200;
  Tuner tuner(space, topts);
  (void)tuner.run(cd, [&](const Config& c) {
    EvaluationResult r;
    r.objective =
        model.step_time(machine, 4, {180, 100}, evaluate_multipliers(space, c))
            .total_s;
    return r;
  });
  const auto trace = tuner.history().improvement_trace();
  ASSERT_GE(trace.size(), 8u);  // the paper lists 12 changes
  // Coordinate descent changes exactly one parameter per improvement, so
  // consecutive trace entries must have strictly increasing iterations.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].iteration, trace[i - 1].iteration);
  }
}

TEST(TuningPopIntegration, NelderMeadAlsoImprovesParameters) {
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = presets::hockney(8, 4);
  const auto space = make_param_space(32);
  const auto start = default_config(space);

  const auto evaluate = [&](const Config& c) {
    EvaluationResult r;
    r.objective =
        model.step_time(machine, 4, {180, 100}, evaluate_multipliers(space, c))
            .total_s;
    return r;
  };
  const double t_default = evaluate(start).objective;

  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  nm_opts.max_stall = 60;
  NelderMead nm(space, nm_opts, start);
  TunerOptions topts;
  topts.max_iterations = 250;
  Tuner tuner(space, topts);
  const auto result = tuner.run(nm, evaluate);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best_result.objective, t_default * 0.95);
}

TEST(TuningPopIntegration, BlockSizeTuningViaOfflineDriver) {
  // Fig. 4 scenario at one topology, driven through the off-line
  // representative-short-run mechanism.
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = presets::nersc_sp3(60, 8);
  const auto pspace = make_param_space(32);
  const auto mult = evaluate_multipliers(pspace, default_config(pspace));

  ParamSpace space;
  space.add(Parameter::Integer("bx", 30, 720, 6));
  space.add(Parameter::Integer("by", 24, 600, 4));
  Config start = space.default_config();
  space.set(start, "bx", std::int64_t{180});
  space.set(start, "by", std::int64_t{100});

  const double t_default =
      model.run_time(machine, 8, {180, 100}, mult, /*steps=*/10);

  OfflineOptions oopts;
  oopts.short_run_steps = 10;
  oopts.max_runs = 60;
  oopts.restart_overhead_s = 1.0;
  OfflineDriver driver(space, oopts);
  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  NelderMead nm(space, nm_opts, start);
  const auto result = driver.tune(nm, [&](const Config& c, int steps) {
    ShortRunResult r;
    const BlockShape shape{static_cast<int>(space.get_int(c, "bx")),
                           static_cast<int>(space.get_int(c, "by"))};
    r.measured_s = model.run_time(machine, 8, shape, mult, steps);
    r.warmup_s = 0.1 * r.measured_s;
    return r;
  });

  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best_measured_s, t_default);
  EXPECT_GT(result.total_tuning_cost_s, result.best_measured_s);  // bills add up
}

}  // namespace
