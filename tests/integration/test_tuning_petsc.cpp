// End-to-end reproduction of the paper's PETSc case study at test scale:
// Active Harmony tunes a matrix decomposition (real CG solves provide the
// iteration counts; the cluster simulator prices the partition) and must
// beat the default even split.

#include <gtest/gtest.h>

#include <cmath>
#include "core/harmony.hpp"
#include "minipetsc/minipetsc.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using namespace harmony;
using namespace minipetsc;
namespace presets = simcluster::presets;

TEST(TuningPetscIntegration, DecompositionTuningBeatsDefault) {
  // Fig. 2 scenario: dense diagonal blocks of uneven sizes, 4 ranks. The
  // even default split cuts through blocks; tuning must find better
  // boundaries.
  const std::vector<int> block_sizes{35, 15, 30, 20};  // n = 100
  const auto A = dense_block_matrix(block_sizes, 0.1);
  const int n = A.rows();
  const int nranks = 4;
  const auto machine = presets::pentium4_quad();

  // Real numerics per candidate: the decomposition defines the block-Jacobi
  // preconditioner, so boundaries that respect the dense blocks converge in
  // far fewer CG iterations — exactly the Fig. 2 "data locality" effect.
  Vec b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.05 * i);

  const auto time_of = [&](const RowPartition& part) {
    Vec x;
    const PcBlockJacobi pc(A, part);
    const auto ksp = cg_solve(A, b, x, pc);
    if (!ksp.converged) return 1e18;
    return simulate_sles(machine, analyze(A, part), ksp.iterations).total_s;
  };
  const double t_default = time_of(RowPartition::even(n, nranks));

  ParamSpace space;
  for (int i = 0; i < nranks - 1; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    space.add(Parameter::Integer(name, 1, n - 1));
  }
  ConstraintSet constraints;
  constraints.add(std::make_shared<MonotoneConstraint>(0, nranks - 1, 1.0));

  // Start at the default even decomposition, as the paper's tuning does.
  // The halo volume falls monotonically as a boundary approaches a block
  // edge, so greedy boundary refinement walks straight into alignment.
  Config start = space.default_config();
  space.set(start, "b0", std::int64_t{25});
  space.set(start, "b1", std::int64_t{50});
  space.set(start, "b2", std::int64_t{75});

  (void)constraints;  // boundaries move one at a time; order is preserved
  CoordinateDescent cd(space, start, 20, /*line_samples=*/99);
  TunerOptions topts;
  topts.max_iterations = 900;
  topts.max_proposals = 100000;
  Tuner tuner(space, topts);
  const auto result = tuner.run(cd, [&](const Config& c) {
    std::vector<int> bounds;
    for (const auto& v : c.values) {
      bounds.push_back(static_cast<int>(std::get<std::int64_t>(v)));
    }
    EvaluationResult r;
    try {
      const auto part = RowPartition::from_boundaries(n, nranks, bounds);
      r.objective = time_of(part);
    } catch (const std::invalid_argument&) {
      return EvaluationResult::infeasible();
    }
    return r;
  });

  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best_result.objective, t_default);
  const double improvement =
      (t_default - result.best_result.objective) / t_default;
  EXPECT_GT(improvement, 0.15);  // paper band: 15-20%
}

TEST(TuningPetscIntegration, HeterogeneousCavityDistribution) {
  // Fig. 3(b) scenario: grid strips over 2 slow + 2 fast nodes. Tuning the
  // cut rows must beat the even default, and the fast nodes must end up
  // with more rows.
  const int nx = 50;
  const int ny = 48;
  const auto machine = presets::pentium_hetero();

  // Real numerics: solve a small cavity once to get genuine SNES work counts.
  CavityProblem cavity;
  cavity.nx = 9;
  cavity.ny = 9;
  Vec state = cavity.initial_guess();
  SnesOptions sopts;
  sopts.max_iterations = 30;
  sopts.ksp.max_iterations = 2000;
  const auto snes = newton_solve(cavity.residual(), state, sopts);
  ASSERT_TRUE(snes.converged);
  SnesWork work;
  work.newton_iterations = snes.iterations;
  work.total_ksp_iterations = snes.total_ksp_iterations;
  work.residual_evaluations = snes.residual_evaluations;

  const auto time_of = [&](const Da2D& da) {
    return simulate_snes(machine, da, work).total_s;
  };
  const double t_default = time_of(Da2D::even_strips(nx, ny, 4));

  ParamSpace space;
  space.add(Parameter::Integer("c0", 1, ny - 1));
  space.add(Parameter::Integer("c1", 1, ny - 1));
  space.add(Parameter::Integer("c2", 1, ny - 1));
  ConstraintSet constraints;
  constraints.add(std::make_shared<MonotoneConstraint>(0, 3, 1.0));

  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  NelderMead nm(space, nm_opts, std::nullopt, std::move(constraints));
  TunerOptions topts;
  topts.max_iterations = 100;
  Tuner tuner(space, topts);
  const auto result = tuner.run(nm, [&](const Config& c) {
    EvaluationResult r;
    try {
      const Da2D da = Da2D::from_cuts(
          nx, ny,
          {static_cast<int>(std::get<std::int64_t>(c.values[0])),
           static_cast<int>(std::get<std::int64_t>(c.values[1])),
           static_cast<int>(std::get<std::int64_t>(c.values[2]))});
      r.objective = time_of(da);
    } catch (const std::invalid_argument&) {
      return EvaluationResult::infeasible();
    }
    return r;
  });

  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best_result.objective, t_default);

  // Ranks 0-1 are the slow PentiumII nodes: tuned strips must give them
  // fewer rows than the fast ranks 2-3 get.
  const Da2D best = Da2D::from_cuts(
      nx, ny,
      {static_cast<int>(std::get<std::int64_t>(result.best->values[0])),
       static_cast<int>(std::get<std::int64_t>(result.best->values[1])),
       static_cast<int>(std::get<std::int64_t>(result.best->values[2]))});
  const auto points = best.points_per_rank();
  EXPECT_LT(points[0] + points[1], points[2] + points[3]);
}

TEST(TuningPetscIntegration, HomogeneousCavityStaysNearEven) {
  // Fig. 3(a): with identical nodes, tuning should not find anything much
  // better than the even default (within a few percent).
  const int nx = 50;
  const int ny = 48;
  const auto machine = presets::pentium4_quad();
  SnesWork work;
  work.newton_iterations = 6;
  work.total_ksp_iterations = 120;
  work.residual_evaluations = 140;
  const double t_default =
      simulate_snes(machine, Da2D::even_strips(nx, ny, 4), work).total_s;

  ParamSpace space;
  space.add(Parameter::Integer("c0", 1, ny - 1));
  space.add(Parameter::Integer("c1", 1, ny - 1));
  space.add(Parameter::Integer("c2", 1, ny - 1));
  ConstraintSet constraints;
  constraints.add(std::make_shared<MonotoneConstraint>(0, 3, 1.0));
  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 2;
  NelderMead nm(space, nm_opts, std::nullopt, std::move(constraints));
  TunerOptions topts;
  topts.max_iterations = 80;
  Tuner tuner(space, topts);
  const auto result = tuner.run(nm, [&](const Config& c) {
    EvaluationResult r;
    try {
      const Da2D da = Da2D::from_cuts(
          nx, ny,
          {static_cast<int>(std::get<std::int64_t>(c.values[0])),
           static_cast<int>(std::get<std::int64_t>(c.values[1])),
           static_cast<int>(std::get<std::int64_t>(c.values[2]))});
      r.objective = simulate_snes(machine, da, work).total_s;
    } catch (const std::invalid_argument&) {
      return EvaluationResult::infeasible();
    }
    return r;
  });
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GE(t_default, result.best_result.objective);
  EXPECT_LT((t_default - result.best_result.objective) / t_default, 0.05);
}

}  // namespace
