#include "minipop/blocks.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace minipop;

const PopGrid& small_grid() {
  static const PopGrid g(720, 480);
  return g;
}

TEST(Blocks, GridCarvedCompletely) {
  const BlockDecomposition d(small_grid(), {90, 60}, 16);
  EXPECT_EQ(d.nbx(), 8);
  EXPECT_EQ(d.nby(), 8);
  EXPECT_EQ(d.total_blocks(), 64);
  std::int64_t area = 0;
  for (const auto& b : d.blocks()) {
    area += static_cast<std::int64_t>(b.width) * b.height;
  }
  EXPECT_EQ(area, 720LL * 480);
}

TEST(Blocks, EdgeBlocksNarrower) {
  const BlockDecomposition d(small_grid(), {500, 300}, 4);
  EXPECT_EQ(d.nbx(), 2);
  EXPECT_EQ(d.block(1, 0).width, 220);
  EXPECT_EQ(d.block(0, 1).height, 180);
}

TEST(Blocks, LandBlocksEliminated) {
  const BlockDecomposition d(small_grid(), {30, 20}, 16);
  int assigned = 0;
  for (const auto& b : d.blocks()) {
    if (b.rank >= 0) {
      ++assigned;
      EXPECT_GT(b.ocean_points, 0);
    } else {
      EXPECT_EQ(b.ocean_points, 0);
    }
  }
  EXPECT_EQ(assigned, d.ocean_blocks());
  EXPECT_LT(d.ocean_blocks(), d.total_blocks());  // some land exists
}

TEST(Blocks, AllRanksValid) {
  const BlockDecomposition d(small_grid(), {90, 60}, 7);
  for (const auto& b : d.blocks()) {
    EXPECT_LT(b.rank, 7);
  }
}

TEST(Blocks, OceanPointsConservedAcrossRanks) {
  const BlockDecomposition d(small_grid(), {90, 60}, 12);
  const auto per_rank = d.ocean_points_per_rank();
  const std::int64_t sum = std::accumulate(per_rank.begin(), per_rank.end(), 0LL);
  std::int64_t direct = 0;
  for (const auto& b : d.blocks()) {
    if (b.rank >= 0) direct += b.ocean_points;
  }
  EXPECT_EQ(sum, direct);
}

TEST(Blocks, ComputedPointsAtLeastOcean) {
  const BlockDecomposition d(small_grid(), {90, 60}, 12);
  const auto ocean = d.ocean_points_per_rank();
  const auto computed = d.computed_points_per_rank();
  for (std::size_t r = 0; r < ocean.size(); ++r) {
    EXPECT_GE(computed[r], ocean[r]);
  }
}

TEST(Blocks, ImbalanceAtLeastOne) {
  for (const auto dist : {Distribution::Cartesian, Distribution::RakeWork,
                          Distribution::RoundRobin, Distribution::Balanced}) {
    const BlockDecomposition d(small_grid(), {60, 60}, 10, dist);
    EXPECT_GE(d.imbalance(), 1.0) << to_string(dist);
    EXPECT_GE(d.compute_inefficiency(), 1.0) << to_string(dist);
  }
}

TEST(Blocks, AutoPicksNoWorseThanCartesian) {
  const BlockDecomposition cart(small_grid(), {60, 40}, 10,
                                Distribution::Cartesian);
  const BlockDecomposition best(small_grid(), {60, 40}, 10, Distribution::Auto);
  EXPECT_LE(best.imbalance(), cart.imbalance() + 1e-9);
}

TEST(Blocks, AutoResolvesToConcretePolicy) {
  const BlockDecomposition d(small_grid(), {60, 40}, 10, Distribution::Auto);
  EXPECT_NE(d.distribution(), Distribution::Auto);
}

TEST(Blocks, BalancedBeatsCartesianOnManyBlocks) {
  // With several blocks per rank, the least-loaded greedy cannot be worse.
  const BlockDecomposition cart(small_grid(), {45, 30}, 8, Distribution::Cartesian);
  const BlockDecomposition lpt(small_grid(), {45, 30}, 8, Distribution::Balanced);
  EXPECT_LE(lpt.imbalance(), cart.imbalance() + 1e-9);
}

TEST(Blocks, RoundRobinSpreadsNeighbors) {
  const BlockDecomposition rr(small_grid(), {90, 60}, 4, Distribution::RoundRobin);
  const auto counts = rr.blocks_per_rank();
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*mx - *mn, 1);  // cyclic deal balances counts to within one
}

TEST(Blocks, HaloStatsPositiveAndSplit) {
  const BlockDecomposition d(small_grid(), {90, 60}, 16);
  const auto halo = d.halo_stats(/*ranks_per_node=*/4);
  EXPECT_GT(halo.intra_node_points + halo.inter_node_points, 0);
  EXPECT_GE(halo.max_rank_inter_points, 0);
  // One big SMP node: everything is intra-node.
  const auto all_intra = d.halo_stats(16);
  EXPECT_EQ(all_intra.inter_node_points, 0);
}

TEST(Blocks, MorePpnShiftsTrafficIntraNode) {
  const BlockDecomposition d(small_grid(), {90, 60}, 16);
  const auto ppn2 = d.halo_stats(2);
  const auto ppn8 = d.halo_stats(8);
  EXPECT_GT(ppn8.intra_node_points, ppn2.intra_node_points);
  EXPECT_LT(ppn8.inter_node_points, ppn2.inter_node_points);
}

TEST(Blocks, HaloBadPpnThrows) {
  const BlockDecomposition d(small_grid(), {90, 60}, 4);
  EXPECT_THROW((void)d.halo_stats(0), std::invalid_argument);
}

TEST(Blocks, BadArgsThrow) {
  EXPECT_THROW(BlockDecomposition(small_grid(), {0, 10}, 4), std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(small_grid(), {10, 0}, 4), std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(small_grid(), {10, 10}, 0), std::invalid_argument);
}

TEST(Blocks, BlockAccessorBoundsChecked) {
  const BlockDecomposition d(small_grid(), {90, 60}, 4);
  EXPECT_THROW((void)d.block(-1, 0), std::out_of_range);
  EXPECT_THROW((void)d.block(0, 99), std::out_of_range);
}

TEST(Blocks, DistributionNamesStable) {
  EXPECT_STREQ(to_string(Distribution::Cartesian), "cartesian");
  EXPECT_STREQ(to_string(Distribution::RakeWork), "rake");
  EXPECT_STREQ(to_string(Distribution::RoundRobin), "roundrobin");
  EXPECT_STREQ(to_string(Distribution::Balanced), "balanced");
  EXPECT_STREQ(to_string(Distribution::Auto), "auto");
}

// Property: every distribution conserves the total ocean points and assigns
// every ocean block exactly one rank, for several block shapes.
class BlocksConservation
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlocksConservation, AcrossDistributions) {
  const auto [bx, by] = GetParam();
  std::int64_t reference = -1;
  for (const auto dist : {Distribution::Cartesian, Distribution::RakeWork,
                          Distribution::RoundRobin, Distribution::Balanced}) {
    const BlockDecomposition d(small_grid(), {bx, by}, 6, dist);
    const auto per_rank = d.ocean_points_per_rank();
    const std::int64_t total =
        std::accumulate(per_rank.begin(), per_rank.end(), 0LL);
    if (reference < 0) reference = total;
    EXPECT_EQ(total, reference) << to_string(dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlocksConservation,
                         ::testing::Values(std::pair{90, 60}, std::pair{45, 30},
                                           std::pair{240, 160},
                                           std::pair{37, 53}));

}  // namespace
