#include "minipop/pop_params.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace minipop;

TEST(PopParams, TableHasAboutTwentyParameters) {
  // The paper: "about 20 parameters that are performance related", 2-4
  // values each (num_iotasks is the extra integer one).
  const auto& table = parameter_table();
  EXPECT_GE(table.size(), 18u);
  EXPECT_LE(table.size(), 22u);
  for (const auto& spec : table) {
    EXPECT_GE(spec.choices.size(), 2u) << spec.name;
    EXPECT_LE(spec.choices.size(), 4u) << spec.name;
    EXPECT_EQ(spec.choices.size(), spec.multipliers.size()) << spec.name;
  }
}

TEST(PopParams, TableMatchesPaperTableII) {
  // The twelve parameters of Table II with their Default column values.
  const std::vector<std::pair<std::string, std::string>> expectations = {
      {"hmix_momentum_choice", "anis"}, {"hmix_tracer_choice", "gent"},
      {"kappa_choice", "constant"},     {"slope_control_choice", "notanh"},
      {"hmix_alignment_choice", "east"},{"state_choice", "jmcd"},
      {"state_range_opt", "ignore"},    {"ws_interp_type", "nearest"},
      {"shf_interp_type", "nearest"},   {"sfwf_interp_type", "nearest"},
      {"ap_interp_type", "nearest"},
  };
  const auto& table = parameter_table();
  for (const auto& [name, def] : expectations) {
    const auto it = std::find_if(table.begin(), table.end(),
                                 [&](const auto& s) { return s.name == name; });
    ASSERT_NE(it, table.end()) << name;
    EXPECT_EQ(it->choices[static_cast<std::size_t>(it->default_index)], def);
  }
}

TEST(PopParams, PaperTunedValuesAreTheFastChoices) {
  // Table II "After tuning" column: those choices carry multiplier 1.0.
  const std::vector<std::pair<std::string, std::string>> tuned = {
      {"hmix_momentum_choice", "del2"}, {"hmix_tracer_choice", "del2"},
      {"kappa_choice", "variable"},     {"slope_control_choice", "clip"},
      {"hmix_alignment_choice", "grid"},{"state_choice", "linear"},
      {"state_range_opt", "enforce"},   {"ws_interp_type", "4point"},
  };
  const auto& table = parameter_table();
  for (const auto& [name, choice] : tuned) {
    const auto it = std::find_if(table.begin(), table.end(),
                                 [&](const auto& s) { return s.name == name; });
    ASSERT_NE(it, table.end());
    const auto ci = std::find(it->choices.begin(), it->choices.end(), choice);
    ASSERT_NE(ci, it->choices.end());
    EXPECT_DOUBLE_EQ(
        it->multipliers[static_cast<std::size_t>(ci - it->choices.begin())], 1.0)
        << name;
  }
}

TEST(PopParams, SpaceIncludesIotasksAndAllParams) {
  const auto space = make_param_space(32);
  EXPECT_EQ(space.dim(), parameter_table().size() + 1);
  EXPECT_TRUE(space.index_of("num_iotasks").has_value());
}

TEST(PopParams, DefaultConfigMatchesDefaults) {
  const auto space = make_param_space(32);
  const auto config = default_config(space);
  EXPECT_EQ(space.get_int(config, "num_iotasks"), 1);
  EXPECT_EQ(space.get_enum(config, "hmix_momentum_choice"), "anis");
  EXPECT_EQ(space.get_enum(config, "state_choice"), "jmcd");
}

TEST(PopParams, DefaultMultipliersAreSuboptimal) {
  const auto space = make_param_space(32);
  const auto mult = evaluate_multipliers(space, default_config(space));
  EXPECT_GT(mult.momentum, 1.0);
  EXPECT_GT(mult.tracer, 1.0);
  EXPECT_GT(mult.state, 1.0);
  EXPECT_GT(mult.forcing, 1.0);
}

TEST(PopParams, BestMultipliersAreUnity) {
  const auto best = best_multipliers();
  EXPECT_DOUBLE_EQ(best.momentum, 1.0);
  EXPECT_DOUBLE_EQ(best.tracer, 1.0);
  EXPECT_DOUBLE_EQ(best.state, 1.0);
  EXPECT_DOUBLE_EQ(best.forcing, 1.0);
}

TEST(PopParams, EvaluateReflectsSingleChange) {
  const auto space = make_param_space(32);
  auto config = default_config(space);
  const auto before = evaluate_multipliers(space, config);
  space.set(config, "hmix_momentum_choice", std::string("del2"));
  const auto after = evaluate_multipliers(space, config);
  EXPECT_LT(after.momentum, before.momentum);
  EXPECT_DOUBLE_EQ(after.tracer, before.tracer);  // other phases untouched
}

TEST(PopParams, IotasksPassedThrough) {
  const auto space = make_param_space(32);
  auto config = default_config(space);
  space.set(config, "num_iotasks", std::int64_t{8});
  EXPECT_EQ(evaluate_multipliers(space, config).num_iotasks, 8);
}

TEST(PopParams, SearchSpaceIsLargePerPaper) {
  // "This makes the search space fairly large" — hundreds of millions of
  // combinations across the ~20 categorical parameters alone.
  const auto space = make_param_space(32);
  EXPECT_GT(space.total_points(), 1e9);
}

TEST(PopParams, BadIotasksThrows) {
  EXPECT_THROW((void)make_param_space(0), std::invalid_argument);
}

TEST(PopParams, DefaultsAlreadyOptimalForExtendedParams) {
  // Parameters beyond Table II default to their fastest setting — tuning
  // should leave them alone (the paper's tuning changed only 12).
  const auto& table = parameter_table();
  int already_best = 0;
  for (const auto& spec : table) {
    const double def_mult =
        spec.multipliers[static_cast<std::size_t>(spec.default_index)];
    const double best =
        *std::min_element(spec.multipliers.begin(), spec.multipliers.end());
    if (def_mult == best) ++already_best;
  }
  EXPECT_GE(already_best, 6);
}

}  // namespace
