#include "minipop/pop_model.hpp"

#include <gtest/gtest.h>

#include "simcluster/presets.hpp"

namespace {

using namespace minipop;
using simcluster::Machine;
namespace presets = simcluster::presets;

const PopGrid& grid() {
  static const PopGrid g = PopGrid::production();
  return g;
}

PhaseMultipliers defaults_mult() {
  const auto space = make_param_space(32);
  return evaluate_multipliers(space, default_config(space));
}

TEST(PopModel, StepBreakdownSumsToTotal) {
  const PopModel model(grid());
  const auto m = presets::nersc_sp3(30, 16);
  const auto rep = model.step_time(m, 16, {180, 100}, defaults_mult());
  EXPECT_NEAR(rep.total_s,
              rep.baroclinic_s + rep.halo_s + rep.barotropic_s + rep.forcing_s +
                  rep.io_s,
              1e-12);
  EXPECT_GT(rep.baroclinic_s, 0.0);
  EXPECT_GT(rep.halo_s, 0.0);
  EXPECT_GT(rep.barotropic_s, 0.0);
  EXPECT_GE(rep.imbalance, 1.0);
}

TEST(PopModel, TunedParametersFasterThanDefaults) {
  const PopModel model(grid());
  const auto m = presets::hockney(8, 4);
  const auto space = make_param_space(32);
  auto tuned_cfg = default_config(space);
  // Apply the paper's Table II tuned values.
  space.set(tuned_cfg, "num_iotasks", std::int64_t{4});
  space.set(tuned_cfg, "hmix_momentum_choice", std::string("del2"));
  space.set(tuned_cfg, "hmix_tracer_choice", std::string("del2"));
  space.set(tuned_cfg, "kappa_choice", std::string("variable"));
  space.set(tuned_cfg, "slope_control_choice", std::string("clip"));
  space.set(tuned_cfg, "hmix_alignment_choice", std::string("grid"));
  space.set(tuned_cfg, "state_choice", std::string("linear"));
  space.set(tuned_cfg, "state_range_opt", std::string("enforce"));
  space.set(tuned_cfg, "ws_interp_type", std::string("4point"));
  space.set(tuned_cfg, "shf_interp_type", std::string("4point"));
  space.set(tuned_cfg, "sfwf_interp_type", std::string("4point"));
  space.set(tuned_cfg, "ap_interp_type", std::string("4point"));
  const auto tuned = evaluate_multipliers(space, tuned_cfg);

  const double t_def = model.step_time(m, 4, {180, 100}, defaults_mult()).total_s;
  const double t_tuned = model.step_time(m, 4, {180, 100}, tuned).total_s;
  const double improvement = (t_def - t_tuned) / t_def;
  // Paper: 16.7% after full tuning on this machine class.
  EXPECT_GT(improvement, 0.10);
  EXPECT_LT(improvement, 0.30);
}

TEST(PopModel, WorseMultiplierSlowsStep) {
  const PopModel model(grid());
  const auto m = presets::nersc_sp3(30, 16);
  PhaseMultipliers a = defaults_mult();
  PhaseMultipliers b = a;
  b.tracer *= 1.2;
  EXPECT_LT(model.step_time(m, 16, {180, 100}, a).total_s,
            model.step_time(m, 16, {180, 100}, b).total_s);
}

TEST(PopModel, FewerCpusPerNodeIsSlower) {
  // Fig. 4's bars rise as CPUs/node falls (more inter-node halo traffic).
  const PopModel model(grid());
  const auto mult = defaults_mult();
  const double t16 =
      model.step_time(presets::nersc_sp3(30, 16), 16, {180, 100}, mult).total_s;
  const double t2 =
      model.step_time(presets::nersc_sp3(240, 2), 2, {180, 100}, mult).total_s;
  EXPECT_GT(t2, t16);
}

TEST(PopModel, BlockSizeMatters) {
  const PopModel model(grid());
  const auto m = presets::nersc_sp3(60, 8);
  const auto mult = defaults_mult();
  const double t_default = model.step_time(m, 8, {180, 100}, mult).total_s;
  double best = 1e300;
  for (const int bx : {90, 120, 144, 180, 240, 360}) {
    for (const int by : {48, 60, 96, 100, 120, 150}) {
      best = std::min(best, model.step_time(m, 8, {bx, by}, mult).total_s);
    }
  }
  EXPECT_LT(best, t_default);  // the default is not optimal
}

TEST(PopModel, DistributionPolicyAffectsTime) {
  const PopModel model(grid());
  const auto m = presets::nersc_sp3(60, 8);
  const auto mult = defaults_mult();
  const double cart =
      model.step_time(m, 8, {90, 50}, mult, Distribution::Cartesian).total_s;
  const double rr =
      model.step_time(m, 8, {90, 50}, mult, Distribution::RoundRobin).total_s;
  EXPECT_NE(cart, rr);
}

TEST(PopModel, RunTimeScalesWithSteps) {
  const PopModel model(grid());
  const auto m = presets::hockney(8, 4);
  const auto mult = defaults_mult();
  const double t1 = model.run_time(m, 4, {180, 100}, mult, 1);
  const double t20 = model.run_time(m, 4, {180, 100}, mult, 20);
  EXPECT_NEAR(t20, 20.0 * t1, 1e-9);
}

TEST(PopModel, MoreIoTasksHelpInitially) {
  const PopModel model(grid());
  const auto m = presets::hockney(8, 4);
  PhaseMultipliers one = defaults_mult();
  PhaseMultipliers four = one;
  four.num_iotasks = 4;
  EXPECT_LT(model.step_time(m, 4, {180, 100}, four).io_s,
            model.step_time(m, 4, {180, 100}, one).io_s);
}

TEST(PopModel, BadArgsThrow) {
  const PopModel model(grid());
  const auto m = presets::hockney(8, 4);
  EXPECT_THROW((void)model.step_time(m, 0, {180, 100}, defaults_mult()),
               std::invalid_argument);
  EXPECT_THROW((void)model.run_time(m, 4, {180, 100}, defaults_mult(), 0),
               std::invalid_argument);
}

// Parameterized over the paper's six topologies: every topology must show a
// block size at least a few percent better than the 180x100 default.
class PopTopology : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PopTopology, DefaultBlockIsImprovable) {
  const auto [nodes, ppn] = GetParam();
  const PopModel model(grid());
  const auto m = presets::nersc_sp3(nodes, ppn);
  const auto mult = defaults_mult();
  const double t_default = model.step_time(m, ppn, {180, 100}, mult).total_s;
  double best = t_default;
  for (const int bx : {120, 144, 150, 180, 200, 240, 360}) {
    for (const int by : {48, 50, 60, 96, 100, 120, 150, 400}) {
      best = std::min(best, model.step_time(m, ppn, {bx, by}, mult).total_s);
    }
  }
  EXPECT_LT(best, t_default * 0.995);
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, PopTopology,
                         ::testing::Values(std::pair{30, 16}, std::pair{48, 10},
                                           std::pair{60, 8}, std::pair{80, 6},
                                           std::pair{120, 4}, std::pair{240, 2}));

}  // namespace
