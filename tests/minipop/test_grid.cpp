#include "minipop/grid.hpp"

#include <gtest/gtest.h>

namespace {

using minipop::PopGrid;

TEST(PopGridTest, ProductionShape) {
  const auto g = PopGrid::production();
  EXPECT_EQ(g.nx(), 3600);
  EXPECT_EQ(g.ny(), 2400);
  EXPECT_EQ(g.depth_levels(), 40);
}

TEST(PopGridTest, OceanFractionIsEarthLike) {
  const auto g = PopGrid::production();
  const double f = g.ocean_fraction();
  EXPECT_GT(f, 0.6);
  EXPECT_LT(f, 0.95);
}

TEST(PopGridTest, MaskIsDeterministic) {
  const auto a = PopGrid::production();
  const auto b = PopGrid::production();
  for (int i = 0; i < 3600; i += 97) {
    for (int j = 0; j < 2400; j += 83) {
      EXPECT_EQ(a.is_ocean(i, j), b.is_ocean(i, j));
    }
  }
}

TEST(PopGridTest, SouthernCapIsLand) {
  const auto g = PopGrid::production();
  for (int i = 0; i < 3600; i += 100) {
    EXPECT_FALSE(g.is_ocean(i, 0));
  }
}

TEST(PopGridTest, MaskHasBothLandAndOcean) {
  const auto g = PopGrid::production();
  int land = 0;
  int ocean = 0;
  for (int i = 0; i < 3600; i += 60) {
    for (int j = 200; j < 2400; j += 60) {
      (g.is_ocean(i, j) ? ocean : land)++;
    }
  }
  EXPECT_GT(land, 0);
  EXPECT_GT(ocean, 0);
}

TEST(PopGridTest, IsOceanOutOfRangeThrows) {
  const auto g = PopGrid(100, 100);
  EXPECT_THROW((void)g.is_ocean(-1, 0), std::out_of_range);
  EXPECT_THROW((void)g.is_ocean(0, 100), std::out_of_range);
}

TEST(PopGridTest, OceanPointsWholeGridMatchesFraction) {
  const auto g = PopGrid(400, 300);
  const auto points = g.ocean_points_in(0, 400, 0, 300);
  EXPECT_NEAR(static_cast<double>(points) / (400.0 * 300.0), g.ocean_fraction(),
              1e-9);
}

TEST(PopGridTest, OceanPointsAdditiveAcrossSplit) {
  const auto g = PopGrid(1200, 800);
  const auto whole = g.ocean_points_in(0, 1200, 0, 800);
  const auto left = g.ocean_points_in(0, 600, 0, 800);
  const auto right = g.ocean_points_in(600, 1200, 0, 800);
  // Prefix-sum based counts are exactly additive on aligned splits.
  EXPECT_NEAR(static_cast<double>(left + right), static_cast<double>(whole),
              static_cast<double>(whole) * 0.01 + 8);
}

TEST(PopGridTest, OceanPointsEmptyRectangleIsZero) {
  const auto g = PopGrid(100, 100);
  EXPECT_EQ(g.ocean_points_in(10, 10, 0, 50), 0);
}

TEST(PopGridTest, OceanPointsBoundsChecked) {
  const auto g = PopGrid(100, 100);
  EXPECT_THROW((void)g.ocean_points_in(-1, 50, 0, 50), std::invalid_argument);
  EXPECT_THROW((void)g.ocean_points_in(0, 101, 0, 50), std::invalid_argument);
  EXPECT_THROW((void)g.ocean_points_in(50, 10, 0, 50), std::invalid_argument);
}

TEST(PopGridTest, OceanPointsNeverExceedArea) {
  const auto g = PopGrid::production();
  for (int i = 0; i < 3600; i += 500) {
    for (int j = 0; j < 2400; j += 400) {
      const int i1 = std::min(3600, i + 180);
      const int j1 = std::min(2400, j + 100);
      const auto pts = g.ocean_points_in(i, i1, j, j1);
      EXPECT_GE(pts, 0);
      EXPECT_LE(pts, static_cast<std::int64_t>(i1 - i) * (j1 - j));
    }
  }
}

TEST(PopGridTest, BadShapeThrows) {
  EXPECT_THROW(PopGrid(0, 10), std::invalid_argument);
  EXPECT_THROW(PopGrid(10, 10, 0), std::invalid_argument);
}

}  // namespace
