#include "minipop/io_model.hpp"

#include <gtest/gtest.h>

namespace {

using minipop::IoModel;

TEST(IoModel, WriteTimePositive) {
  const IoModel io;
  EXPECT_GT(io.write_time(1e8, 1, 32), 0.0);
}

TEST(IoModel, ConvexInTaskCount) {
  // t(n) must fall, bottom out, then rise: the Table I/II tradeoff.
  const IoModel io;
  const double volume = 3.4e8;
  const double t1 = io.write_time(volume, 1, 480);
  const double topt = io.write_time(volume, io.optimal_tasks(volume, 480), 480);
  const double t480 = io.write_time(volume, 480, 480);
  EXPECT_LT(topt, t1);
  EXPECT_LT(topt, t480);
}

TEST(IoModel, OptimalTasksMatchesScan) {
  const IoModel io;
  const double volume = 3.4e8;
  const int n_star = io.optimal_tasks(volume, 64);
  double best = 1e300;
  int best_n = 0;
  for (int n = 1; n <= 64; ++n) {
    const double t = io.write_time(volume, n, 64);
    if (t < best) {
      best = t;
      best_n = n;
    }
  }
  EXPECT_NEAR(n_star, best_n, 1);
}

TEST(IoModel, PaperScaleOptimumIsSingleDigit) {
  // Table II settles on num_iotasks = 4 for the 32-rank Hockney run; our
  // calibration should land in that neighborhood for a history-file volume.
  const IoModel io;
  const double volume = 3600.0 * 2400.0 * 8.0 * 5.0;  // 5 surface fields
  const int n = io.optimal_tasks(volume, 32);
  EXPECT_GE(n, 2);
  EXPECT_LE(n, 12);
}

TEST(IoModel, MoreRanksAllowLargerOptimum) {
  const IoModel io;
  const double volume = 5e9;
  EXPECT_GE(io.optimal_tasks(volume, 480), io.optimal_tasks(volume, 8));
}

TEST(IoModel, TasksCappedByRanks) {
  const IoModel io;
  // Requesting more tasks than ranks behaves like nranks tasks.
  EXPECT_DOUBLE_EQ(io.write_time(1e8, 64, 16), io.write_time(1e8, 16, 16));
}

TEST(IoModel, ZeroVolumeStillHasOverhead) {
  const IoModel io;
  EXPECT_GT(io.write_time(0.0, 1, 4), 0.0);
  EXPECT_EQ(io.optimal_tasks(0.0, 4), 1);
}

TEST(IoModel, BadArgsThrow) {
  const IoModel io;
  EXPECT_THROW((void)io.write_time(-1.0, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)io.write_time(1.0, 0, 4), std::invalid_argument);
  EXPECT_THROW((void)io.write_time(1.0, 1, 0), std::invalid_argument);
}

TEST(IoModel, VolumeMonotone) {
  const IoModel io;
  EXPECT_LT(io.write_time(1e6, 4, 32), io.write_time(1e9, 4, 32));
}

}  // namespace
