#include "engine/surrogate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "core/genetic_search.hpp"
#include "core/systematic_sampler.hpp"
#include "core/tuner.hpp"
#include "engine/surrogate_backend.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using harmony::Config;
using harmony::EvaluationResult;
using harmony::EvalOutcome;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::engine::KnnSurrogate;
using harmony::engine::KnnSurrogateOptions;
using harmony::engine::SurrogateBackendOptions;
using harmony::engine::SurrogateEvalBackend;

ParamSpace line_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 100));
  return space;
}

Config at(const ParamSpace& space, std::int64_t x) {
  Config c = space.default_config();
  space.set(c, "x", x);
  return c;
}

TEST(KnnSurrogate, RejectsBadConstruction) {
  ParamSpace empty;
  EXPECT_THROW(KnnSurrogate(empty, {}), std::invalid_argument);
  const auto space = line_space();
  KnnSurrogateOptions opts;
  opts.k = 0;
  EXPECT_THROW(KnnSurrogate(space, opts), std::invalid_argument);
}

TEST(KnnSurrogate, AbstainsUntilMinSamples) {
  const auto space = line_space();
  KnnSurrogateOptions opts;
  opts.min_samples = 3;
  KnnSurrogate model(space, opts);
  model.observe(at(space, 0), 1.0);
  model.observe(at(space, 50), 2.0);
  EXPECT_FALSE(model.predict(at(space, 25)).has_value());
  model.observe(at(space, 100), 3.0);
  EXPECT_EQ(model.samples(), 3u);
  EXPECT_TRUE(model.predict(at(space, 25)).has_value());
}

TEST(KnnSurrogate, ExactMatchReturnsStoredValue) {
  const auto space = line_space();
  KnnSurrogateOptions opts;
  opts.min_samples = 1;
  KnnSurrogate model(space, opts);
  model.observe(at(space, 10), 7.5);
  model.observe(at(space, 90), 1.5);
  const auto p = model.predict(at(space, 10));
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 7.5);
}

TEST(KnnSurrogate, InverseDistanceInterpolates) {
  const auto space = line_space();
  KnnSurrogateOptions opts;
  opts.min_samples = 2;
  opts.k = 2;
  KnnSurrogate model(space, opts);
  model.observe(at(space, 0), 0.0);
  model.observe(at(space, 100), 100.0);
  // Equidistant from both neighbours: equal weights, mean of the values.
  const auto mid = model.predict(at(space, 50));
  ASSERT_TRUE(mid.has_value());
  EXPECT_NEAR(*mid, 50.0, 1e-9);
  // Nearer the low end: the prediction leans toward the low value.
  const auto low = model.predict(at(space, 20));
  ASSERT_TRUE(low.has_value());
  EXPECT_LT(*low, 50.0);
}

TEST(KnnSurrogate, FitHistoryAbsorbsValidNonCachedEntries) {
  const auto space = line_space();
  harmony::History h(space);
  EvaluationResult good;
  good.objective = 1.0;
  h.record(at(space, 10), good, /*cached=*/false);
  h.record(at(space, 10), good, /*cached=*/true);  // repeat: skipped
  EvaluationResult bad;
  bad.valid = false;
  h.record(at(space, 20), bad, /*cached=*/false);  // invalid: skipped
  h.record(at(space, 30), good, /*cached=*/false);

  KnnSurrogate model(space, {});
  model.fit_history(h);
  EXPECT_EQ(model.samples(), 2u);
}

/// Inner backend that counts evaluations and records batch sizes.
class CountingBackend final : public harmony::EvalBackend {
 public:
  explicit CountingBackend(std::function<double(const Config&)> fn)
      : fn_(std::move(fn)) {}

  [[nodiscard]] std::vector<EvalOutcome> evaluate(
      const std::vector<Config>& batch, const Context&) override {
    batch_sizes_.push_back(batch.size());
    std::vector<EvalOutcome> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i].result.objective = fn_(batch[i]);
      ++evals_;
    }
    return out;
  }

  [[nodiscard]] std::size_t evals() const { return evals_; }
  [[nodiscard]] const std::vector<std::size_t>& batch_sizes() const {
    return batch_sizes_;
  }

 private:
  std::function<double(const Config&)> fn_;
  std::size_t evals_ = 0;
  std::vector<std::size_t> batch_sizes_;
};

TEST(SurrogateEvalBackend, RejectsBadOptions) {
  const auto space = line_space();
  KnnSurrogate model(space, {});
  CountingBackend inner([](const Config&) { return 0.0; });
  SurrogateBackendOptions opts;
  opts.top_k = 0;
  EXPECT_THROW(SurrogateEvalBackend(inner, model, opts), std::invalid_argument);
  opts.top_k = 8;
  opts.rank_window = 4;
  EXPECT_THROW(SurrogateEvalBackend(inner, model, opts), std::invalid_argument);
}

TEST(SurrogateEvalBackend, ForwardsWholeBatchWhileModelWarmsUp) {
  const auto space = line_space();
  KnnSurrogateOptions mopts;
  mopts.min_samples = 100;  // never warms up in this test
  KnnSurrogate model(space, mopts);
  CountingBackend inner(
      [&](const Config& c) { return static_cast<double>(space.get_int(c, "x")); });
  SurrogateBackendOptions opts;
  opts.top_k = 2;
  opts.rank_window = 8;
  SurrogateEvalBackend backend(inner, model, opts);
  EXPECT_EQ(backend.concurrency(), 8u);

  std::vector<Config> batch;
  for (std::int64_t x : {10, 20, 30, 40, 50}) batch.push_back(at(space, x));
  const auto out = backend.evaluate(batch, {});
  ASSERT_EQ(out.size(), 5u);
  for (const auto& o : out) {
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.speculative);
  }
  EXPECT_EQ(inner.evals(), 5u);
  EXPECT_EQ(backend.forwarded(), 5u);
  EXPECT_EQ(backend.skipped(), 0u);
  // All five real measurements were fed to the model.
  EXPECT_EQ(model.samples(), 5u);
}

TEST(SurrogateEvalBackend, ForwardsOnlyTopKOncePredicting) {
  const auto space = line_space();
  KnnSurrogateOptions mopts;
  mopts.min_samples = 2;
  mopts.k = 2;
  KnnSurrogate model(space, mopts);
  // Objective rises with x, and the model already knows the trend.
  model.observe(at(space, 0), 0.0);
  model.observe(at(space, 100), 100.0);

  CountingBackend inner(
      [&](const Config& c) { return static_cast<double>(space.get_int(c, "x")); });
  SurrogateBackendOptions opts;
  opts.top_k = 2;
  opts.rank_window = 8;
  SurrogateEvalBackend backend(inner, model, opts);

  std::vector<Config> batch;
  for (std::int64_t x : {90, 10, 50, 30, 70}) batch.push_back(at(space, x));
  const auto out = backend.evaluate(batch, {});
  ASSERT_EQ(out.size(), 5u);

  // x=10 has the lowest prediction, so it fills the exploitation slot; the
  // second forwarded slot goes to exploration — x=50 is farthest from the
  // stored samples at 0 and 100, so it is the most uncertain candidate.
  EXPECT_TRUE(out[1].ran);
  EXPECT_TRUE(out[2].ran);
  EXPECT_EQ(inner.evals(), 2u);
  EXPECT_EQ(backend.forwarded(), 2u);
  EXPECT_EQ(backend.skipped(), 3u);

  // The rest come back speculative, carrying the model's prediction.
  for (const std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{4}}) {
    EXPECT_FALSE(out[i].ran) << i;
    EXPECT_TRUE(out[i].speculative) << i;
    EXPECT_TRUE(out[i].result.valid) << i;
    EXPECT_EQ(out[i].result.metrics.count("surrogate_predicted"), 1u) << i;
  }
  // Measured results (not predictions) were observed into the model.
  EXPECT_EQ(model.samples(), 4u);
}

TEST(SurrogateEvalBackend, AnyAbstentionForwardsTheWholeBatch) {
  const auto space = line_space();
  KnnSurrogateOptions mopts;
  mopts.min_samples = 2;
  KnnSurrogate model(space, mopts);
  model.observe(at(space, 0), 0.0);
  model.observe(at(space, 100), 100.0);

  CountingBackend inner([](const Config&) { return 1.0; });
  SurrogateBackendOptions opts;
  opts.top_k = 1;
  opts.rank_window = 4;
  SurrogateEvalBackend backend(inner, model, opts);

  // KnnSurrogate predicts everywhere once warm, so force abstention by
  // draining the model: a fresh model with zero samples abstains on all.
  KnnSurrogate cold(space, mopts);
  SurrogateEvalBackend cold_backend(inner, cold, opts);
  std::vector<Config> batch{at(space, 10), at(space, 20), at(space, 30)};
  const auto out = cold_backend.evaluate(batch, {});
  for (const auto& o : out) EXPECT_TRUE(o.ran);
  EXPECT_EQ(cold_backend.skipped(), 0u);
}

TEST(SurrogateEvalBackend, SpeculativeResultsDoNotChargeControllerBudget) {
  const auto space = line_space();
  KnnSurrogateOptions mopts;
  mopts.min_samples = 4;
  mopts.k = 3;
  KnnSurrogate model(space, mopts);
  CountingBackend inner(
      [&](const Config& c) { return static_cast<double>(space.get_int(c, "x")); });
  SurrogateBackendOptions opts;
  opts.top_k = 3;
  opts.rank_window = 10;
  SurrogateEvalBackend backend(inner, model, opts);

  harmony::GeneticOptions gopts;
  gopts.population = 10;
  gopts.generations = 6;
  gopts.seed = 2;
  harmony::GeneticSearch ga(space, gopts);

  harmony::ControllerLimits limits;
  limits.max_evaluations = 25;
  harmony::SearchController controller(space, limits);
  const auto result = controller.run(
      static_cast<harmony::BatchSearchStrategy&>(ga), backend);

  // Budget counts only real measurements, and it is respected.
  EXPECT_EQ(result.evaluations, static_cast<int>(inner.evals()));
  EXPECT_LE(result.evaluations, 25);
  // The strategy heard more reports than the budget paid for.
  EXPECT_GT(result.proposals, result.evaluations);
  EXPECT_GT(backend.skipped(), 0u);

  // History holds exactly the real measurements — no speculative entries.
  EXPECT_EQ(controller.history().entries().size(), inner.evals());
  for (const auto& e : controller.history().entries()) {
    EXPECT_EQ(e.result.metrics.count("surrogate_predicted"), 0u);
  }

  // The incumbent was really measured, not predicted.
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best_result.metrics.count("surrogate_predicted"), 0u);
}

/// Fig. 6 acceptance: genetic search behind the surrogate reaches within 5%
/// of the 368-evaluation systematic-sweep best on the GS2 space while
/// spending at most a quarter of that budget on real evaluations.
TEST(ModelGuidedSearch, MatchesSweepQualityAtQuarterBudget) {
  const minigs2::Gs2Model model;
  ParamSpace space;
  space.add(Parameter::Integer("negrid", 4, 16));
  space.add(Parameter::Integer("ntheta", 10, 32, 2));
  space.add(Parameter::Integer("nodes", 1, 64));

  const auto objective = [&](const Config& c) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    return model.run_time(machine, 2 * nodes, res, minigs2::Layout("lxyes"),
                          minigs2::CollisionModel::None, 1000);
  };
  const harmony::Evaluator evaluate = [&](const Config& c) {
    EvaluationResult r;
    r.objective = objective(c);
    return r;
  };

  // Reference: the paper-style 368-point systematic sweep.
  harmony::SystematicSampler sweep(space, std::vector<int>{4, 4, 23});
  harmony::TunerOptions topts;
  topts.max_iterations = 368;
  topts.max_proposals = 4000;
  harmony::Tuner sweep_tuner(space, topts);
  const auto sweep_out = sweep_tuner.run(sweep, evaluate);
  ASSERT_TRUE(sweep_out.best.has_value());
  const double sweep_best = sweep_out.best_result.objective;

  // Model-guided run: at most 92 *distinct* real evaluations (25% of 368).
  // The controller cache makes re-proposed members (elites, converged
  // duplicates) free, exactly like every other deployment of the loop.
  harmony::GeneticOptions gopts;
  gopts.population = 16;
  gopts.generations = 100;  // budget-limited, not generation-limited
  gopts.mutation = 0.25;
  gopts.seed = 6;
  harmony::GeneticSearch ga(space, gopts);
  KnnSurrogate knn(space, {});
  harmony::SerialEvalBackend serial(evaluate);
  SurrogateBackendOptions sopts;
  sopts.top_k = 4;
  sopts.rank_window = 16;
  SurrogateEvalBackend backend(serial, knn, sopts);

  harmony::ControllerLimits limits;
  limits.max_evaluations = 92;
  limits.max_proposals = 100000;
  harmony::EvalCache cache(space);
  harmony::SearchController controller(space, limits, {}, nullptr, &cache);
  const auto out = controller.run(
      static_cast<harmony::BatchSearchStrategy&>(ga), backend);

  ASSERT_TRUE(out.best.has_value());
  EXPECT_LE(out.evaluations, 92);
  EXPECT_LE(out.best_objective, 1.05 * sweep_best)
      << "model-guided " << out.best_objective << " vs sweep " << sweep_best;
}

}  // namespace
