#include "engine/parallel_driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "core/history.hpp"
#include "core/nelder_mead.hpp"
#include "core/offline_driver.hpp"
#include "core/random_search.hpp"
#include "core/systematic_sampler.hpp"
#include "engine/batch_strategy.hpp"

namespace {

using harmony::Config;
using harmony::History;
using harmony::NelderMead;
using harmony::OfflineDriver;
using harmony::OfflineOptions;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::RandomSearch;
using harmony::ShortRunResult;
using harmony::SystematicSampler;
using harmony::engine::BatchRandomSearch;
using harmony::engine::BatchSystematicSampler;
using harmony::engine::ParallelOfflineDriver;
using harmony::engine::ParallelOfflineOptions;
using harmony::engine::SpeculativeNelderMead;

ParamSpace grid2d(int nx, int ny) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, nx - 1));
  s.add(Parameter::Integer("y", 0, ny - 1));
  return s;
}

/// Deterministic short-run function: a bowl with the optimum at (17, 5).
ShortRunResult bowl_run(const Config& c, int /*steps*/) {
  const auto x = static_cast<double>(std::get<std::int64_t>(c.values[0]));
  const auto y = static_cast<double>(std::get<std::int64_t>(c.values[1]));
  ShortRunResult r;
  r.measured_s = 4.0 + 0.02 * ((x - 17) * (x - 17) + (y - 5) * (y - 5));
  r.warmup_s = 0.1;
  return r;
}

void expect_identical_histories(const History& serial, const History& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.iterations(), parallel.iterations());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial.entries()[i];
    const auto& b = parallel.entries()[i];
    EXPECT_EQ(a.config, b.config) << "entry " << i;
    EXPECT_EQ(a.iteration, b.iteration) << "entry " << i;
    EXPECT_EQ(a.cached, b.cached) << "entry " << i;
    EXPECT_EQ(a.improved, b.improved) << "entry " << i;
    EXPECT_EQ(a.result.valid, b.result.valid) << "entry " << i;
    EXPECT_EQ(a.result.objective, b.result.objective) << "entry " << i;  // bitwise
    EXPECT_EQ(a.result.metrics, b.result.metrics) << "entry " << i;
  }
  EXPECT_EQ(serial.best_objective(), parallel.best_objective());
}

// ---- Determinism guard: pool size 1 must replay OfflineDriver exactly ----

TEST(ParallelOfflineDriver, PoolSize1MatchesSerialDriverNelderMead) {
  const auto s = grid2d(48, 32);
  OfflineOptions so;
  so.max_runs = 40;
  so.restart_overhead_s = 1.5;
  OfflineDriver serial_driver(s, so);
  harmony::NelderMeadOptions nopts;
  nopts.max_restarts = 2;
  NelderMead serial_nm(s, nopts);
  const auto serial_result = serial_driver.tune(serial_nm, bowl_run);

  ParallelOfflineOptions po;
  po.max_runs = 40;
  po.restart_overhead_s = 1.5;
  po.pool_size = 1;
  ParallelOfflineDriver parallel_driver(s, po);
  NelderMead parallel_nm(s, nopts);
  const auto parallel_result = parallel_driver.tune(parallel_nm, bowl_run);

  expect_identical_histories(serial_driver.history(), parallel_driver.history());
  ASSERT_TRUE(parallel_result.best.has_value());
  EXPECT_EQ(*parallel_result.best, *serial_result.best);
  EXPECT_EQ(parallel_result.best_measured_s, serial_result.best_measured_s);
  EXPECT_EQ(parallel_result.runs, serial_result.runs);
  EXPECT_EQ(parallel_result.total_tuning_cost_s, serial_result.total_tuning_cost_s);
}

TEST(ParallelOfflineDriver, PoolSize1MatchesSerialDriverRandomFixedSeed) {
  const auto s = grid2d(9, 7);  // small: exercises the cached pathway too
  OfflineOptions so;
  so.max_runs = 30;
  OfflineDriver serial_driver(s, so);
  RandomSearch serial_rs(s, 80, 1234);
  (void)serial_driver.tune(serial_rs, bowl_run);

  ParallelOfflineOptions po;
  po.max_runs = 30;
  po.pool_size = 1;
  ParallelOfflineDriver parallel_driver(s, po);
  RandomSearch parallel_rs(s, 80, 1234);
  (void)parallel_driver.tune(parallel_rs, bowl_run);

  expect_identical_histories(serial_driver.history(), parallel_driver.history());
}

TEST(ParallelOfflineDriver, PoolSize1MatchesSerialDriverSystematic) {
  const auto s = grid2d(12, 10);
  OfflineOptions so;
  so.max_runs = 25;
  OfflineDriver serial_driver(s, so);
  SystematicSampler serial_sweep(s, std::vector<int>{6, 5});
  (void)serial_driver.tune(serial_sweep, bowl_run);

  ParallelOfflineOptions po;
  po.max_runs = 25;
  po.pool_size = 1;
  ParallelOfflineDriver parallel_driver(s, po);
  SystematicSampler parallel_sweep(s, std::vector<int>{6, 5});
  (void)parallel_driver.tune(parallel_sweep, bowl_run);

  expect_identical_histories(serial_driver.history(), parallel_driver.history());
}

// ---- Budget guard ----

TEST(ParallelOfflineDriver, BudgetNeverExceededWithWideBatches) {
  const auto s = grid2d(100, 100);
  ParallelOfflineOptions po;
  po.max_runs = 10;
  po.pool_size = 4;
  po.max_batch = 8;  // batches wider than the remaining budget near the end
  ParallelOfflineDriver driver(s, po);
  BatchRandomSearch batched(s, 1000, 5);
  std::atomic<int> launches{0};
  const auto result = driver.tune(batched, [&](const Config& c, int steps) {
    ++launches;
    return bowl_run(c, steps);
  });
  EXPECT_EQ(result.runs, 10);
  EXPECT_EQ(launches.load(), 10);
}

TEST(ParallelOfflineDriver, DuplicateConfigsInBatchRunOnce) {
  // A tiny space with a wide random batch: duplicates inside one batch must
  // coalesce onto a single short run (or hit the completed entry).
  const auto s = grid2d(3, 2);
  ParallelOfflineOptions po;
  po.max_runs = 36;
  po.pool_size = 4;
  po.max_batch = 6;
  ParallelOfflineDriver driver(s, po);
  BatchRandomSearch batched(s, 48, 21);
  std::atomic<int> launches{0};
  const auto result = driver.tune(batched, [&](const Config& c, int steps) {
    ++launches;
    return bowl_run(c, steps);
  });
  EXPECT_LE(launches.load(), 6);  // at most one run per lattice point
  EXPECT_EQ(result.runs, launches.load());
  EXPECT_GE(result.cache_hits + result.cache_coalesced, 42u);
  EXPECT_EQ(driver.history().size(), 48u);
  EXPECT_EQ(driver.history().cached_count(), 48 - result.runs);
}

// ---- Parallel correctness ----

TEST(ParallelOfflineDriver, WidePoolFindsSameBestAsSerialSweep) {
  const auto s = grid2d(25, 20);
  OfflineOptions so;
  so.max_runs = 500;
  OfflineDriver serial_driver(s, so);
  SystematicSampler serial_sweep(s, std::vector<int>{25, 20});
  const auto serial_result = serial_driver.tune(serial_sweep, bowl_run);

  ParallelOfflineOptions po;
  po.max_runs = 500;
  po.pool_size = 8;
  ParallelOfflineDriver driver(s, po);
  BatchSystematicSampler batched(s, std::vector<int>{25, 20});
  const auto result = driver.tune(batched, bowl_run);

  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, *serial_result.best);
  EXPECT_EQ(result.best_measured_s, serial_result.best_measured_s);
  EXPECT_EQ(result.runs, serial_result.runs);
  // Aggregate tuning bill is the same work, just overlapped in time.
  EXPECT_DOUBLE_EQ(result.total_tuning_cost_s, serial_result.total_tuning_cost_s);
}

TEST(ParallelOfflineDriver, SpeculativeNelderMeadMatchesSerialBest) {
  const auto s = grid2d(48, 32);
  OfflineOptions so;
  so.max_runs = 200;  // generous: both searches converge before the budget
  OfflineDriver serial_driver(s, so);
  harmony::NelderMeadOptions nopts;
  nopts.max_restarts = 1;
  NelderMead serial_nm(s, nopts);
  const auto serial_result = serial_driver.tune(serial_nm, bowl_run);
  ASSERT_TRUE(serial_result.strategy_converged);

  ParallelOfflineOptions po;
  po.max_runs = 200;
  po.pool_size = 4;
  ParallelOfflineDriver driver(s, po);
  SpeculativeNelderMead spec(s, nopts);
  const auto result = driver.tune(spec, bowl_run);

  ASSERT_TRUE(result.strategy_converged);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, *serial_result.best);
  EXPECT_EQ(result.best_measured_s, serial_result.best_measured_s);  // bitwise
}

TEST(ParallelOfflineDriver, RunFunctionExceptionsPropagate) {
  const auto s = grid2d(10, 10);
  ParallelOfflineOptions po;
  po.pool_size = 2;
  ParallelOfflineDriver driver(s, po);
  RandomSearch rs(s, 10, 3);
  EXPECT_THROW((void)driver.tune(rs,
                                 [](const Config&, int) -> ShortRunResult {
                                   throw std::runtime_error("cluster down");
                                 }),
               std::runtime_error);
}

TEST(ParallelOfflineDriver, BadOptionsThrow) {
  const auto s = grid2d(4, 4);
  ParallelOfflineOptions po;
  po.max_runs = 0;
  EXPECT_THROW(ParallelOfflineDriver(s, po), std::invalid_argument);
  po.max_runs = 1;
  po.pool_size = 0;
  EXPECT_THROW(ParallelOfflineDriver(s, po), std::invalid_argument);
  po.pool_size = 1;
  po.short_run_steps = 0;
  EXPECT_THROW(ParallelOfflineDriver(s, po), std::invalid_argument);
  po.short_run_steps = 1;
  po.restart_overhead_s = -1;
  EXPECT_THROW(ParallelOfflineDriver(s, po), std::invalid_argument);
  po.restart_overhead_s = 0;
  po.max_batch = -1;
  EXPECT_THROW(ParallelOfflineDriver(s, po), std::invalid_argument);
}

TEST(ParallelOfflineDriver, NullRunFunctionThrows) {
  const auto s = grid2d(4, 4);
  ParallelOfflineDriver driver(s);
  RandomSearch rs(s, 4, 1);
  EXPECT_THROW((void)driver.tune(rs, nullptr), std::invalid_argument);
}

}  // namespace
