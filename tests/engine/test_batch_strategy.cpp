#include "engine/batch_strategy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/exhaustive.hpp"
#include "core/nelder_mead.hpp"
#include "core/random_search.hpp"
#include "core/systematic_sampler.hpp"
#include "minipetsc/minipetsc.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using harmony::Config;
using harmony::EvaluationResult;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::SearchStrategy;
using harmony::engine::BatchExhaustive;
using harmony::engine::BatchRandomSearch;
using harmony::engine::BatchSearchStrategy;
using harmony::engine::BatchSystematicSampler;
using harmony::engine::SequentialBatchAdapter;
using harmony::engine::SpeculativeNelderMead;

ParamSpace grid2d(int nx, int ny) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, nx - 1));
  s.add(Parameter::Integer("y", 0, ny - 1));
  return s;
}

EvaluationResult eval_of(double v) {
  EvaluationResult r;
  r.objective = v;
  return r;
}

double quadratic(const Config& c) {
  const auto x = static_cast<double>(std::get<std::int64_t>(c.values[0]));
  const auto y = static_cast<double>(std::get<std::int64_t>(c.values[1]));
  return (x - 13) * (x - 13) + 0.5 * (y - 21) * (y - 21);
}

/// Drain a serial strategy, returning its full proposal sequence.
std::vector<Config> drain_serial(SearchStrategy& s,
                                 const std::function<double(const Config&)>& f,
                                 int cap = 100000) {
  std::vector<Config> seq;
  while (!s.converged() && static_cast<int>(seq.size()) < cap) {
    auto c = s.propose();
    if (!c) break;
    s.report(*c, eval_of(f(*c)));
    seq.push_back(std::move(*c));
  }
  return seq;
}

/// Drain a batch strategy with the given batch width.
std::vector<Config> drain_batch(BatchSearchStrategy& s, std::size_t width,
                                const std::function<double(const Config&)>& f,
                                int cap = 100000) {
  std::vector<Config> seq;
  while (!s.converged() && static_cast<int>(seq.size()) < cap) {
    auto batch = s.propose_batch(width);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    results.reserve(batch.size());
    for (const auto& c : batch) results.push_back(eval_of(f(c)));
    s.report_batch(batch, results);
    for (auto& c : batch) seq.push_back(std::move(c));
  }
  return seq;
}

TEST(SequentialBatchAdapter, EmitsBatchesOfExactlyOne) {
  const auto s = grid2d(8, 8);
  harmony::RandomSearch rs(s, 5, 7);
  SequentialBatchAdapter adapter(rs);
  const auto batch = adapter.propose_batch(16);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(adapter.name(), "random");
}

TEST(SequentialBatchAdapter, IdenticalTrajectoryToWrappedStrategy) {
  const auto s = grid2d(40, 40);
  harmony::RandomSearch serial(s, 60, 11);
  harmony::RandomSearch wrapped(s, 60, 11);
  SequentialBatchAdapter adapter(wrapped);

  const auto serial_seq = drain_serial(serial, quadratic);
  const auto batch_seq = drain_batch(adapter, 8, quadratic);

  ASSERT_EQ(serial_seq.size(), batch_seq.size());
  for (std::size_t i = 0; i < serial_seq.size(); ++i) {
    EXPECT_EQ(serial_seq[i], batch_seq[i]) << "diverged at proposal " << i;
  }
  ASSERT_TRUE(adapter.best().has_value());
  EXPECT_EQ(*adapter.best(), *serial.best());
  EXPECT_EQ(adapter.best_objective(), serial.best_objective());
}

TEST(SequentialBatchAdapter, BatchSizeMismatchThrows) {
  const auto s = grid2d(4, 4);
  harmony::RandomSearch rs(s, 5, 7);
  SequentialBatchAdapter adapter(rs);
  const auto batch = adapter.propose_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_THROW(adapter.report_batch(batch, {}), std::invalid_argument);
}

TEST(BatchRandomSearch, SameStreamAsSerialRandomSearch) {
  const auto s = grid2d(100, 100);
  harmony::RandomSearch serial(s, 80, 99);
  BatchRandomSearch batched(s, 80, 99);

  const auto serial_seq = drain_serial(serial, quadratic);
  const auto batch_seq = drain_batch(batched, 13, quadratic);
  ASSERT_EQ(serial_seq.size(), batch_seq.size());
  for (std::size_t i = 0; i < serial_seq.size(); ++i) {
    EXPECT_EQ(serial_seq[i], batch_seq[i]);
  }
  EXPECT_EQ(batched.best_objective(), serial.best_objective());
}

TEST(BatchSystematicSampler, SamePlanAsSerialSampler) {
  const auto s = grid2d(15, 9);
  harmony::SystematicSampler serial(s, std::vector<int>{5, 4});
  BatchSystematicSampler batched(s, std::vector<int>{5, 4});

  const auto serial_seq = drain_serial(serial, quadratic);
  const auto batch_seq = drain_batch(batched, 6, quadratic);
  ASSERT_EQ(serial_seq.size(), 20u);
  ASSERT_EQ(batch_seq.size(), 20u);
  for (std::size_t i = 0; i < serial_seq.size(); ++i) {
    EXPECT_EQ(serial_seq[i], batch_seq[i]);
  }
  EXPECT_EQ(*batched.best(), *serial.best());
}

TEST(BatchExhaustive, VisitsWholeLatticeInSerialOrder) {
  const auto s = grid2d(6, 7);
  harmony::Exhaustive serial(s);
  BatchExhaustive batched(s);

  const auto serial_seq = drain_serial(serial, quadratic);
  const auto batch_seq = drain_batch(batched, 10, quadratic);
  ASSERT_EQ(serial_seq.size(), 42u);
  ASSERT_EQ(batch_seq.size(), 42u);
  for (std::size_t i = 0; i < serial_seq.size(); ++i) {
    EXPECT_EQ(serial_seq[i], batch_seq[i]);
  }
  EXPECT_TRUE(batched.converged());
  EXPECT_EQ(*batched.best(), *serial.best());
}

TEST(SpeculativeNelderMead, IdenticalToSerialOnQuadratic) {
  const auto s = grid2d(64, 64);
  harmony::NelderMeadOptions opts;
  opts.max_restarts = 2;
  harmony::NelderMead serial(s, opts);
  SpeculativeNelderMead spec(s, opts);

  (void)drain_serial(serial, quadratic, 5000);
  (void)drain_batch(spec, 8, quadratic, 5000);

  ASSERT_TRUE(serial.converged());
  ASSERT_TRUE(spec.converged());
  ASSERT_TRUE(spec.best().has_value());
  EXPECT_EQ(*spec.best(), *serial.best());
  EXPECT_EQ(spec.best_objective(), serial.best_objective());  // bitwise
  EXPECT_EQ(spec.inner().transformations(), serial.transformations());
  EXPECT_EQ(spec.inner().restarts_used(), serial.restarts_used());
}

TEST(SpeculativeNelderMead, IdenticalToSerialOnFig2PetscObjective) {
  // The Fig. 2 objective: tune a 4-rank matrix decomposition where real CG
  // solves provide iteration counts and the cluster simulator prices the
  // partition. Deterministic, so the speculative simplex must land on the
  // exact serial result.
  using namespace minipetsc;
  const std::vector<int> block_sizes{35, 15, 30, 20};  // n = 100
  const auto A = dense_block_matrix(block_sizes, 0.1);
  const int n = A.rows();
  const int nranks = 4;
  const auto machine = simcluster::presets::pentium4_quad();

  Vec b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.05 * i);

  ParamSpace space;
  for (int i = 0; i < nranks - 1; ++i) {
    space.add(Parameter::Integer("b" + std::to_string(i), 1, n - 1));
  }

  // Memoized so both drives see bit-identical values on revisits.
  std::map<std::string, double> memo;
  const auto objective = [&](const Config& c) {
    const std::string key = space.key(c);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    std::vector<int> bounds;
    for (const auto& v : c.values) {
      bounds.push_back(static_cast<int>(std::get<std::int64_t>(v)));
    }
    double t = 1e18;
    try {
      const auto part = RowPartition::from_boundaries(n, nranks, bounds);
      Vec x;
      const PcBlockJacobi pc(A, part);
      const auto ksp = cg_solve(A, b, x, pc);
      if (ksp.converged) {
        t = simulate_sles(machine, analyze(A, part), ksp.iterations).total_s;
      }
    } catch (const std::invalid_argument&) {
    }
    memo.emplace(key, t);
    return t;
  };

  Config start = space.default_config();
  space.set(start, "b0", std::int64_t{25});
  space.set(start, "b1", std::int64_t{50});
  space.set(start, "b2", std::int64_t{75});

  harmony::NelderMeadOptions opts;
  opts.max_restarts = 1;
  harmony::NelderMead serial(space, opts, start);
  SpeculativeNelderMead spec(space, opts, start);

  (void)drain_serial(serial, objective, 2000);
  (void)drain_batch(spec, 8, objective, 2000);

  ASSERT_TRUE(serial.converged());
  ASSERT_TRUE(spec.converged());
  ASSERT_TRUE(spec.best().has_value());
  EXPECT_EQ(*spec.best(), *serial.best());
  EXPECT_EQ(spec.best_objective(), serial.best_objective());  // bitwise
  EXPECT_EQ(spec.inner().transformations(), serial.transformations());
}

TEST(SpeculativeNelderMead, BatchWidthOneStillMatchesSerial) {
  // With max_n == 1 speculation degenerates to the serial alternation.
  const auto s = grid2d(32, 32);
  harmony::NelderMead serial(s);
  SpeculativeNelderMead spec(s);
  (void)drain_serial(serial, quadratic, 5000);
  (void)drain_batch(spec, 1, quadratic, 5000);
  ASSERT_TRUE(spec.best().has_value());
  EXPECT_EQ(*spec.best(), *serial.best());
  EXPECT_EQ(spec.best_objective(), serial.best_objective());
}

}  // namespace
