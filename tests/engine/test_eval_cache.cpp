#include "engine/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/param_space.hpp"
#include "core/parameter.hpp"

namespace {

using harmony::Config;
using harmony::EvaluationResult;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::engine::ConcurrentEvalCache;

ParamSpace line(int n) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, n - 1));
  return s;
}

Config at(const ParamSpace& s, std::int64_t x) {
  Config c = s.default_config();
  s.set(c, "x", x);
  return c;
}

EvaluationResult value(double v) {
  EvaluationResult r;
  r.objective = v;
  return r;
}

TEST(ConcurrentEvalCache, MissThenHitCounters) {
  const auto s = line(10);
  ConcurrentEvalCache cache(s);
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return value(3.5);
  };

  const auto first = cache.evaluate(at(s, 4), compute);
  EXPECT_TRUE(first.ran);
  EXPECT_FALSE(first.coalesced);
  EXPECT_DOUBLE_EQ(first.result.objective, 3.5);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const auto second = cache.evaluate(at(s, 4), compute);
  EXPECT_FALSE(second.ran);
  EXPECT_FALSE(second.coalesced);
  EXPECT_DOUBLE_EQ(second.result.objective, 3.5);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConcurrentEvalCache, LookupDoesNotCompute) {
  const auto s = line(10);
  ConcurrentEvalCache cache(s);
  EXPECT_FALSE(cache.lookup(at(s, 2)).has_value());
  (void)cache.evaluate(at(s, 2), [] { return value(1.0); });
  const auto hit = cache.lookup(at(s, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->objective, 1.0);
}

TEST(ConcurrentEvalCache, InFlightCoalescing) {
  // Barrier-gated slow objective: worker A starts computing config X and
  // blocks; worker B then asks for X and must coalesce onto A's evaluation
  // (counted separately from completed-entry hits) instead of computing.
  const auto s = line(10);
  ConcurrentEvalCache cache(s);
  std::latch gate(1);
  std::atomic<int> computed{0};

  std::thread a([&] {
    const auto out = cache.evaluate(at(s, 7), [&] {
      ++computed;
      gate.wait();  // hold the evaluation open until B is provably waiting
      return value(9.0);
    });
    EXPECT_TRUE(out.ran);
    EXPECT_FALSE(out.coalesced);
  });

  // Wait until A is inside the computation (its miss is recorded first).
  while (cache.misses() == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  std::thread b([&] {
    const auto out = cache.evaluate(at(s, 7), [&] {
      ++computed;
      return value(-1.0);  // must never run
    });
    EXPECT_FALSE(out.ran);
    EXPECT_TRUE(out.coalesced);
    EXPECT_DOUBLE_EQ(out.result.objective, 9.0);
  });

  // B registers as coalesced before blocking on the shared future.
  while (cache.coalesced() == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  gate.count_down();
  a.join();
  b.join();

  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.coalesced(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ConcurrentEvalCache, ThrowingComputeRetriesLater) {
  const auto s = line(10);
  ConcurrentEvalCache cache(s);
  EXPECT_THROW((void)cache.evaluate(
                   at(s, 3),
                   []() -> EvaluationResult { throw std::runtime_error("fail"); }),
               std::runtime_error);
  // The failed entry was dropped: the next call computes again.
  const auto out = cache.evaluate(at(s, 3), [] { return value(2.0); });
  EXPECT_TRUE(out.ran);
  EXPECT_DOUBLE_EQ(out.result.objective, 2.0);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ConcurrentEvalCache, ClearResetsStateAndCounters) {
  const auto s = line(10);
  ConcurrentEvalCache cache(s);
  (void)cache.evaluate(at(s, 1), [] { return value(1.0); });
  (void)cache.evaluate(at(s, 1), [] { return value(1.0); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.coalesced(), 0u);
  const auto out = cache.evaluate(at(s, 1), [] { return value(4.0); });
  EXPECT_TRUE(out.ran);
}

TEST(ConcurrentEvalCache, ManyThreadsSharedAndDistinctKeys) {
  const auto s = line(8);
  ConcurrentEvalCache cache(s);
  std::atomic<int> computed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const std::int64_t x = (t + i) % 8;
        const auto out = cache.evaluate(at(s, x), [&] {
          ++computed;
          return value(static_cast<double>(x));
        });
        EXPECT_DOUBLE_EQ(out.result.objective, static_cast<double>(x));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every key computed exactly once, everything else served from the table.
  EXPECT_EQ(computed.load(), 8);
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.misses(), 8u);
  EXPECT_EQ(cache.hits() + cache.coalesced(), 8u * 50u - 8u);
}

}  // namespace
