#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using harmony::engine::ThreadPool;

TEST(ThreadPool, RunsSubmittedTaskAndReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker must survive a throwing task.
  auto ok = pool.submit([] { return 1; });
  EXPECT_EQ(ok.get(), 1);
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  // Queue far more tasks than workers, then shut down immediately: graceful
  // shutdown must finish every accepted task, so all futures become ready.
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      }));
    }
    pool.shutdown();
    EXPECT_EQ(pool.completed(), 64u);
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, TasksExecuteConcurrently) {
  // Two tasks that can only finish together: requires two live workers.
  ThreadPool pool(2);
  std::latch rendezvous(2);
  auto a = pool.submit([&] { rendezvous.arrive_and_wait(); });
  auto b = pool.submit([&] { rendezvous.arrive_and_wait(); });
  // Completing at all requires both tasks to be in flight simultaneously.
  a.get();
  b.get();
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManyProducersOneQueue) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  std::mutex m;
  std::vector<std::future<void>> futures;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 25; ++i) {
        auto f = pool.submit([&sum, p, i] { sum += p * 100 + i % 3; });
        const std::lock_guard<std::mutex> lock(m);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(futures.size(), 100u);
  EXPECT_EQ(pool.completed(), 100u);
}

}  // namespace
