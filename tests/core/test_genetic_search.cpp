#include "core/genetic_search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/strategy_registry.hpp"

namespace {

using harmony::Config;
using harmony::ConstraintSet;
using harmony::EvaluationResult;
using harmony::GeneticOptions;
using harmony::GeneticSearch;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::ProductConstraint;

ParamSpace quad_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 31));
  space.add(Parameter::Integer("y", 0, 31));
  return space;
}

EvaluationResult quad_eval(const ParamSpace& space, const Config& c) {
  EvaluationResult r;
  const double x = static_cast<double>(space.get_int(c, "x")) - 21.0;
  const double y = static_cast<double>(space.get_int(c, "y")) - 8.0;
  r.objective = x * x + y * y;
  return r;
}

/// Drive the GA with propose_batch chunks of `chunk`, recording the lattice
/// key of every proposal, until convergence or `max_evals` reports.
std::vector<std::string> drive(const ParamSpace& space, GeneticSearch& ga,
                               std::size_t chunk, int max_evals) {
  std::vector<std::string> keys;
  int evals = 0;
  while (!ga.converged() && evals < max_evals) {
    const auto batch = ga.propose_batch(chunk);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    results.reserve(batch.size());
    for (const auto& c : batch) {
      keys.push_back(space.key(c));
      results.push_back(quad_eval(space, c));
      ++evals;
    }
    ga.report_batch(batch, results);
  }
  return keys;
}

TEST(GeneticSearch, DeterministicUnderSameSeed) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 10;
  opts.generations = 4;
  opts.seed = 42;
  GeneticSearch a(space, opts);
  GeneticSearch b(space, opts);
  EXPECT_EQ(drive(space, a, 3, 1000), drive(space, b, 3, 1000));

  opts.seed = 43;
  GeneticSearch c(space, opts);
  EXPECT_NE(drive(space, a, 3, 1000), drive(space, c, 3, 1000));
}

TEST(GeneticSearch, BatchSizeDoesNotChangeTrajectory) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 12;
  opts.generations = 5;
  opts.seed = 7;

  GeneticSearch serial(space, opts);
  const auto serial_keys = drive(space, serial, 1, 10000);

  for (const std::size_t chunk : {std::size_t{5}, std::size_t{12}, std::size_t{64}}) {
    GeneticSearch batched(space, opts);
    EXPECT_EQ(drive(space, batched, chunk, 10000), serial_keys)
        << "chunk=" << chunk;
  }
}

TEST(GeneticSearch, SerialFacadeMatchesBatchTrajectory) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 8;
  opts.generations = 3;
  opts.seed = 5;

  GeneticSearch batched(space, opts);
  const auto batch_keys = drive(space, batched, 8, 10000);

  GeneticSearch serial(space, opts);
  std::vector<std::string> serial_keys;
  while (auto c = serial.propose()) {
    serial_keys.push_back(space.key(*c));
    serial.report(*c, quad_eval(space, *c));
  }
  EXPECT_EQ(serial_keys, batch_keys);
  EXPECT_TRUE(serial.converged());
}

TEST(GeneticSearch, ConvergesAfterConfiguredGenerations) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 6;
  opts.generations = 3;
  GeneticSearch ga(space, opts);
  const auto keys = drive(space, ga, 6, 10000);
  EXPECT_TRUE(ga.converged());
  EXPECT_EQ(ga.generation(), 3);
  // Exactly population * generations proposals were served.
  EXPECT_EQ(keys.size(), 6u * 3u);
  EXPECT_FALSE(ga.propose().has_value());
  EXPECT_TRUE(ga.propose_batch(4).empty());
}

TEST(GeneticSearch, FindsTheQuadraticBasin) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 16;
  opts.generations = 12;
  opts.seed = 3;
  GeneticSearch ga(space, opts);
  drive(space, ga, 16, 10000);
  ASSERT_TRUE(ga.best().has_value());
  // Optimum is (21, 8) with objective 0; the GA should land within a few
  // lattice steps on a 32x32 grid.
  EXPECT_LE(ga.best_objective(), 2.0);
}

TEST(GeneticSearch, IncumbentIsMonotoneNonIncreasing) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 8;
  opts.generations = 6;
  GeneticSearch ga(space, opts);
  double last = std::numeric_limits<double>::infinity();
  while (!ga.converged()) {
    const auto batch = ga.propose_batch(8);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    for (const auto& c : batch) results.push_back(quad_eval(space, c));
    ga.report_batch(batch, results);
    EXPECT_LE(ga.best_objective(), last);
    last = ga.best_objective();
  }
}

TEST(GeneticSearch, InitialConfigSeedsFirstMember) {
  const auto space = quad_space();
  Config start = space.default_config();
  space.set(start, "x", std::int64_t{21});
  space.set(start, "y", std::int64_t{8});
  GeneticSearch ga(space, {}, start);
  const auto first = ga.propose_batch(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(space.key(first[0]), space.key(start));
}

TEST(GeneticSearch, ConstraintRepairKeepsEveryProposalFeasible) {
  ParamSpace space;
  space.add(Parameter::Integer("nodes", 1, 480));
  space.add(Parameter::Integer("ppn", 1, 16));
  ConstraintSet constraints;
  constraints.add(std::make_shared<ProductConstraint>(0, 1, 480));

  GeneticOptions opts;
  opts.population = 10;
  opts.generations = 6;
  opts.mutation = 0.4;  // stress the repair path
  GeneticSearch ga(space, opts, std::nullopt, constraints);

  int seen = 0;
  while (!ga.converged()) {
    const auto batch = ga.propose_batch(10);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    for (const auto& c : batch) {
      const auto nodes = space.get_int(c, "nodes");
      const auto ppn = space.get_int(c, "ppn");
      EXPECT_EQ(nodes * ppn, 480) << "nodes=" << nodes << " ppn=" << ppn;
      ++seen;
      EvaluationResult r;
      r.objective = static_cast<double>(nodes);
      results.push_back(r);
    }
    ga.report_batch(batch, results);
  }
  EXPECT_EQ(seen, 10 * 6);
}

TEST(GeneticSearch, InvalidResultsNeverBecomeIncumbent) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 6;
  opts.generations = 2;
  GeneticSearch ga(space, opts);
  while (!ga.converged()) {
    const auto batch = ga.propose_batch(6);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    for (const auto& c : batch) {
      EvaluationResult r = quad_eval(space, c);
      r.valid = false;  // every run "fails"
      results.push_back(r);
    }
    ga.report_batch(batch, results);
  }
  EXPECT_FALSE(ga.best().has_value());
  EXPECT_TRUE(std::isinf(ga.best_objective()));
}

TEST(GeneticSearch, RejectsBadOptions) {
  const auto space = quad_space();
  const auto expect_throw = [&](GeneticOptions opts, const char* what) {
    try {
      GeneticSearch ga(space, opts);
      FAIL() << "expected std::invalid_argument: " << what;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  GeneticOptions o;
  o.population = 1;
  expect_throw(o, "population");
  o = {};
  o.mutation = 1.5;
  expect_throw(o, "mutation");
  o = {};
  o.elite = o.population;
  expect_throw(o, "elite");
  o = {};
  o.tournament = 0;
  expect_throw(o, "tournament");
  o = {};
  o.crossover = -0.5;
  expect_throw(o, "crossover");
}

TEST(GeneticSearch, RunsThroughSearchControllerWithBudget) {
  const auto space = quad_space();
  GeneticOptions opts;
  opts.population = 8;
  opts.generations = 20;  // more than the budget allows
  GeneticSearch ga(space, opts);

  const harmony::Evaluator eval = [&](const Config& c) {
    return quad_eval(space, c);
  };
  harmony::SerialEvalBackend backend(eval);
  harmony::ControllerLimits limits;
  limits.max_evaluations = 40;
  harmony::SearchController controller(space, limits);
  const auto out = controller.run(static_cast<harmony::BatchSearchStrategy&>(ga),
                                  backend);
  EXPECT_LE(out.evaluations, 40);
  ASSERT_TRUE(out.best.has_value());
  EXPECT_LE(out.best_objective, 60.0);
}

TEST(GeneticSearch, RegistryMakeBatchRoundTrip) {
  const auto space = quad_space();
  auto ga = harmony::StrategyRegistry::make_batch(
      "genetic", space,
      {{"population", "8"}, {"generations", "2"}, {"seed", "9"}});
  ASSERT_NE(ga, nullptr);
  EXPECT_EQ(ga->name(), "genetic");
  int reported = 0;
  while (!ga->converged()) {
    const auto batch = ga->propose_batch(8);
    if (batch.empty()) break;
    std::vector<EvaluationResult> results;
    for (const auto& c : batch) results.push_back(quad_eval(space, c));
    ga->report_batch(batch, results);
    reported += static_cast<int>(batch.size());
  }
  EXPECT_EQ(reported, 16);
  EXPECT_TRUE(ga->best().has_value());
}

}  // namespace
