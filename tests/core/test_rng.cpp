#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using harmony::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearCenter) {
  Rng r(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2,3,4,5 show up
}

TEST(Rng, UniformIntSingleValue) {
  Rng r(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(13);
  const int n = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  // The child stream should not replay the parent's next outputs.
  Rng b(99);
  (void)b.split();
  EXPECT_EQ(a(), b());  // parents stay in lockstep
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
