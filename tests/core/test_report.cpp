#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using harmony::bar;
using harmony::fmt;
using harmony::percent_improvement;
using harmony::speedup;
using harmony::TextTable;

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TextTable, ColumnWidthsFitWidestCell) {
  TextTable t({"x"});
  t.add_row({"wide-cell-content"});
  std::ostringstream os;
  t.print(os);
  // The rule must span at least the widest cell.
  const std::string out = os.str();
  const auto rule_pos = out.find('-');
  ASSERT_NE(rule_pos, std::string::npos);
  std::size_t rule_len = 0;
  while (out[rule_pos + rule_len] == '-') ++rule_len;
  EXPECT_GE(rule_len, std::string("wide-cell-content").size());
}

TEST(Percent, Improvement) {
  EXPECT_EQ(percent_improvement(100.0, 84.0), "16.0%");
  EXPECT_EQ(percent_improvement(55.06, 16.25), "70.5%");
}

TEST(Percent, NegativeWhenSlower) {
  EXPECT_EQ(percent_improvement(10.0, 11.0), "-10.0%");
}

TEST(Percent, ZeroBaselineIsNa) {
  EXPECT_EQ(percent_improvement(0.0, 5.0), "n/a");
}

TEST(Speedup, Basic) {
  EXPECT_EQ(speedup(55.06, 16.25), "3.4x");
  EXPECT_EQ(speedup(10.0, 0.0), "n/a");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
}

TEST(Bar, ScalesToWidth) {
  EXPECT_EQ(bar(10.0, 10.0, 20).size(), 20u);
  EXPECT_EQ(bar(5.0, 10.0, 20).size(), 10u);
  EXPECT_EQ(bar(0.0, 10.0, 20).size(), 0u);
}

TEST(Bar, DegenerateInputsEmpty) {
  EXPECT_TRUE(bar(1.0, 0.0).empty());
  EXPECT_TRUE(bar(-1.0, 10.0).empty());
}

TEST(Bar, ClampsOverflow) {
  EXPECT_EQ(bar(50.0, 10.0, 20).size(), 20u);
}

}  // namespace
