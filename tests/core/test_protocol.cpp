#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.hpp"

namespace {

using harmony::Config;
using harmony::Parameter;
using harmony::ParamSpace;
namespace proto = harmony::proto;

TEST(Protocol, ParseSimpleLine) {
  const auto m = proto::parse_line("REPORT 3.25");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->verb, "REPORT");
  ASSERT_EQ(m->args.size(), 1u);
  EXPECT_EQ(m->args[0], "3.25");
}

TEST(Protocol, ParseEmptyLineIsNull) {
  EXPECT_FALSE(proto::parse_line("").has_value());
  EXPECT_FALSE(proto::parse_line("   ").has_value());
}

TEST(Protocol, ParseCollapsesWhitespace) {
  const auto m = proto::parse_line("  PARAM   INT  x  1 9  1 ");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->verb, "PARAM");
  EXPECT_EQ(m->args.size(), 5u);
}

TEST(Protocol, FormatRoundtrip) {
  proto::Message m{"CONFIG", {"1", "0.5", "yxles"}};
  const auto parsed = proto::parse_line(proto::format(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->verb, m.verb);
  EXPECT_EQ(parsed->args, m.args);
}

ParamSpace demo_space() {
  ParamSpace s;
  s.add(Parameter::Integer("n", 1, 64, 1));
  s.add(Parameter::Real("alpha", 0.0, 2.0));
  s.add(Parameter::Enum("layout", {"lxyes", "yxles"}));
  return s;
}

TEST(Protocol, EncodeDecodeConfigRoundtrip) {
  const auto s = demo_space();
  const Config c = s.snap({10.0, 1.25, 1.0});
  const auto encoded = proto::encode_config(s, c);
  const auto msg = proto::parse_line("CONFIG " + encoded);
  ASSERT_TRUE(msg.has_value());
  const auto decoded = proto::decode_config(s, msg->args);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, c);
}

TEST(Protocol, DecodeConfigWrongArityFails) {
  const auto s = demo_space();
  EXPECT_FALSE(proto::decode_config(s, {"1", "0.5"}).has_value());
}

TEST(Protocol, DecodeConfigBadIntFails) {
  const auto s = demo_space();
  EXPECT_FALSE(proto::decode_config(s, {"abc", "0.5", "lxyes"}).has_value());
  EXPECT_FALSE(proto::decode_config(s, {"999", "0.5", "lxyes"}).has_value());
}

TEST(Protocol, DecodeConfigBadRealFails) {
  const auto s = demo_space();
  EXPECT_FALSE(proto::decode_config(s, {"1", "zz", "lxyes"}).has_value());
  EXPECT_FALSE(proto::decode_config(s, {"1", "99.0", "lxyes"}).has_value());
}

TEST(Protocol, DecodeConfigBadEnumFails) {
  const auto s = demo_space();
  EXPECT_FALSE(proto::decode_config(s, {"1", "0.5", "bogus"}).has_value());
}

TEST(Protocol, EncodeParamInt) {
  const auto p = Parameter::Integer("n", 1, 64, 2);
  EXPECT_EQ(proto::encode_param(p), "PARAM INT n 1 63 2");
}

TEST(Protocol, EncodeParamReal) {
  const auto p = Parameter::Real("a", 0.5, 2.5);
  EXPECT_EQ(proto::encode_param(p), "PARAM REAL a 0.5 2.5");
}

TEST(Protocol, EncodeParamEnum) {
  const auto p = Parameter::Enum("mode", {"x", "y", "z"});
  EXPECT_EQ(proto::encode_param(p), "PARAM ENUM mode x,y,z");
}

TEST(Protocol, DecodeParamRoundtripInt) {
  const auto p = Parameter::Integer("n", -4, 12, 2);
  const auto msg = proto::parse_line(proto::encode_param(p));
  ASSERT_TRUE(msg.has_value());
  const auto decoded = proto::decode_param(msg->args);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->int_lo(), -4);
  EXPECT_EQ(decoded->int_hi(), 12);
  EXPECT_EQ(decoded->int_step(), 2);
}

TEST(Protocol, DecodeParamRoundtripEnum) {
  const auto p = Parameter::Enum("layout", {"lxyes", "yxles", "yxels"});
  const auto msg = proto::parse_line(proto::encode_param(p));
  const auto decoded = proto::decode_param(msg->args);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->choices(), p.choices());
}

TEST(Protocol, DecodeParamRoundtripReal) {
  const auto p = Parameter::Real("alpha", -1.5, 3.5);
  const auto msg = proto::parse_line(proto::encode_param(p));
  const auto decoded = proto::decode_param(msg->args);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->real_lo(), -1.5);
  EXPECT_DOUBLE_EQ(decoded->real_hi(), 3.5);
}

TEST(Protocol, DecodeParamMalformedFails) {
  EXPECT_FALSE(proto::decode_param(std::vector<std::string>{}).has_value());
  EXPECT_FALSE(proto::decode_param(std::vector<std::string>{"INT"}).has_value());
  EXPECT_FALSE(proto::decode_param({"INT", "x", "a", "b", "c"}).has_value());
  EXPECT_FALSE(proto::decode_param({"INT", "x", "5", "1", "1"}).has_value());  // lo>hi
  EXPECT_FALSE(proto::decode_param({"REAL", "x", "1"}).has_value());
  EXPECT_FALSE(proto::decode_param({"ENUM", "x"}).has_value());
  EXPECT_FALSE(proto::decode_param({"BLOB", "x", "1", "2"}).has_value());
}

TEST(Protocol, DecodeParamTrailingGarbageFails) {
  EXPECT_FALSE(proto::decode_param({"INT", "x", "1", "10", "1", "extra"}).has_value());
}

TEST(Protocol, TraceContextTokenRoundTrips) {
  harmony::obs::TraceContext ctx;
  ctx.trace_id = 0xdeadbeefcafef00dULL;
  ctx.span_id = 0x0000000000000001ULL;
  std::string line = "REPORT+FETCH 3.25";
  proto::append_trace(ctx, line);
  EXPECT_EQ(line, "REPORT+FETCH 3.25 T=deadbeefcafef00d-0000000000000001");

  const auto msg = proto::parse_line(line);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->args.size(), 2u);
  ASSERT_TRUE(proto::is_trace_token(msg->args.back()));
  const auto parsed = proto::parse_trace(msg->args.back());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
  EXPECT_TRUE(parsed->sampled());
}

TEST(Protocol, TraceContextTokenRejectsMalformed) {
  // Not a token at all: parse_trace refuses, is_trace_token refuses.
  EXPECT_FALSE(proto::is_trace_token("3.25"));
  EXPECT_FALSE(proto::is_trace_token("T="));
  EXPECT_FALSE(proto::parse_trace("REPORT").has_value());
  // Token-shaped but invalid bodies.
  EXPECT_FALSE(proto::parse_trace("T=deadbeef").has_value());          // no dash
  EXPECT_FALSE(proto::parse_trace("T=-deadbeef").has_value());         // empty trace
  EXPECT_FALSE(proto::parse_trace("T=deadbeef-").has_value());         // empty span
  EXPECT_FALSE(proto::parse_trace("T=xyzw-0123").has_value());         // non-hex
  EXPECT_FALSE(proto::parse_trace("T=0123zz-0123").has_value());       // non-hex tail
  EXPECT_FALSE(proto::parse_trace("T=00000000000000000-1").has_value());  // 17 digits
  // trace_id 0 means "unsampled" and is never a valid wire token.
  EXPECT_FALSE(
      proto::parse_trace("T=0000000000000000-0000000000000001").has_value());
}

TEST(Protocol, TraceContextAppendIsNoopWhenUnsampled) {
  harmony::obs::TraceContext ctx;  // trace_id 0: unsampled
  std::string line = "FETCH";
  proto::append_trace(ctx, line);
  EXPECT_EQ(line, "FETCH");  // old clients' lines stay byte-identical
}

}  // namespace
