#include "core/param_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using harmony::Config;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::Rng;
using harmony::Value;

ParamSpace mixed_space() {
  ParamSpace s;
  s.add(Parameter::Integer("blocks", 1, 8));
  s.add(Parameter::Real("alpha", 0.0, 1.0));
  s.add(Parameter::Enum("layout", {"lxyes", "yxles", "yxels"}));
  return s;
}

TEST(ParamSpace, DimAndNames) {
  const auto s = mixed_space();
  EXPECT_EQ(s.dim(), 3u);
  EXPECT_EQ(s.names(), (std::vector<std::string>{"blocks", "alpha", "layout"}));
}

TEST(ParamSpace, DuplicateNameThrows) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 1));
  EXPECT_THROW(s.add(Parameter::Real("x", 0, 1)), std::invalid_argument);
}

TEST(ParamSpace, IndexOf) {
  const auto s = mixed_space();
  EXPECT_EQ(s.index_of("alpha"), 1u);
  EXPECT_FALSE(s.index_of("nope").has_value());
}

TEST(ParamSpace, SnapRoundtrip) {
  const auto s = mixed_space();
  const Config c = s.snap({3.0, 0.5, 1.0});
  EXPECT_EQ(std::get<std::int64_t>(c.values[0]), 4);  // lattice index 3 -> value 4
  EXPECT_DOUBLE_EQ(std::get<double>(c.values[1]), 0.5);
  EXPECT_EQ(std::get<std::string>(c.values[2]), "yxles");
  const auto coords = s.coords(c);
  EXPECT_DOUBLE_EQ(coords[0], 3.0);
  EXPECT_DOUBLE_EQ(coords[1], 0.5);
  EXPECT_DOUBLE_EQ(coords[2], 1.0);
}

TEST(ParamSpace, SnapDimensionMismatchThrows) {
  const auto s = mixed_space();
  EXPECT_THROW((void)s.snap({1.0}), std::invalid_argument);
  Config tiny;
  tiny.values = {Value{std::int64_t{1}}};
  EXPECT_THROW((void)s.coords(tiny), std::invalid_argument);
}

TEST(ParamSpace, DefaultConfigIsContained) {
  const auto s = mixed_space();
  EXPECT_TRUE(s.contains(s.default_config()));
}

TEST(ParamSpace, RandomConfigsAreContained) {
  const auto s = mixed_space();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.contains(s.random_config(rng)));
  }
}

TEST(ParamSpace, RandomConfigsCoverEnumChoices) {
  const auto s = mixed_space();
  Rng rng(6);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(std::get<std::string>(s.random_config(rng).values[2]));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ParamSpace, TotalPointsDiscrete) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 1, 4));          // 4
  s.add(Parameter::Enum("b", {"x", "y", "z"}));  // 3
  EXPECT_DOUBLE_EQ(s.total_points(), 12.0);
}

TEST(ParamSpace, TotalPointsContinuousIsInfinite) {
  EXPECT_TRUE(std::isinf(mixed_space().total_points()));
}

TEST(ParamSpace, TotalPointsHugeSpaceStillFinite) {
  // The paper's O(10^100) PETSc search space must not overflow.
  ParamSpace s;
  for (int i = 0; i < 50; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    s.add(Parameter::Integer(name, 1, 90600));
  }
  const double total = s.total_points();
  EXPECT_GT(total, 1e100);
  EXPECT_FALSE(std::isinf(total));
}

TEST(ParamSpace, KeyStableAndDistinct) {
  const auto s = mixed_space();
  const Config a = s.snap({0.0, 0.5, 0.0});
  const Config b = s.snap({0.0, 0.5, 1.0});
  EXPECT_EQ(s.key(a), s.key(a));
  EXPECT_NE(s.key(a), s.key(b));
}

TEST(ParamSpace, KeyIdentifiesSnappedPoint) {
  const auto s = mixed_space();
  // Two nearby continuous points snapping to the same lattice point share a key.
  EXPECT_EQ(s.key(s.snap({2.1, 0.5, 0.2})), s.key(s.snap({1.9, 0.5, 0.4})));
}

TEST(ParamSpace, ContainsRejectsWrongArityOrValues) {
  const auto s = mixed_space();
  Config c = s.default_config();
  EXPECT_TRUE(s.contains(c));
  c.values[0] = Value{std::int64_t{99}};
  EXPECT_FALSE(s.contains(c));
  c.values.pop_back();
  EXPECT_FALSE(s.contains(c));
}

TEST(ParamSpace, NeighborsDiscreteSteps) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 1, 5));
  s.add(Parameter::Enum("b", {"x", "y"}));
  Config c = s.default_config();
  s.set(c, "a", std::int64_t{3});
  s.set(c, "b", std::string("x"));
  const auto ns = s.neighbors(c);
  // a: 2 and 4; b: y  -> three neighbors.
  EXPECT_EQ(ns.size(), 3u);
  for (const auto& n : ns) EXPECT_TRUE(s.contains(n));
}

TEST(ParamSpace, NeighborsAtBoundary) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 1, 5));
  Config c = s.default_config();
  s.set(c, "a", std::int64_t{1});
  const auto ns = s.neighbors(c);
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(ns[0].values[0]), 2);
}

TEST(ParamSpace, NeighborsRealFraction) {
  ParamSpace s;
  s.add(Parameter::Real("x", 0.0, 1.0));
  Config c = s.default_config();  // 0.5
  const auto ns = s.neighbors(c, 0.1);
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_NEAR(std::get<double>(ns[0].values[0]), 0.4, 1e-12);
  EXPECT_NEAR(std::get<double>(ns[1].values[0]), 0.6, 1e-12);
}

TEST(ParamSpace, GettersByName) {
  const auto s = mixed_space();
  Config c = s.default_config();
  s.set(c, "blocks", std::int64_t{7});
  s.set(c, "alpha", 0.25);
  s.set(c, "layout", std::string("yxels"));
  EXPECT_EQ(s.get_int(c, "blocks"), 7);
  EXPECT_DOUBLE_EQ(s.get_real(c, "alpha"), 0.25);
  EXPECT_EQ(s.get_enum(c, "layout"), "yxels");
}

TEST(ParamSpace, GetRealAcceptsIntParameter) {
  const auto s = mixed_space();
  const Config c = s.default_config();
  EXPECT_DOUBLE_EQ(s.get_real(c, "blocks"),
                   static_cast<double>(s.get_int(c, "blocks")));
}

TEST(ParamSpace, SetUnknownNameThrows) {
  const auto s = mixed_space();
  Config c = s.default_config();
  EXPECT_THROW(s.set(c, "nope", std::int64_t{1}), std::out_of_range);
  EXPECT_THROW((void)s.get(c, "nope"), std::out_of_range);
}

TEST(ParamSpace, SetOutOfRangeThrows) {
  const auto s = mixed_space();
  Config c = s.default_config();
  EXPECT_THROW(s.set(c, "blocks", std::int64_t{0}), std::invalid_argument);
  EXPECT_THROW(s.set(c, "layout", std::string("bogus")), std::invalid_argument);
}

TEST(ParamSpace, FormatShowsNames) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 1, 3));
  Config c = s.default_config();
  s.set(c, "a", std::int64_t{2});
  EXPECT_EQ(s.format(c), "a=2");
}

// Property sweep: snap is idempotent — snapping the coords of a snapped
// config returns the identical config.
class SnapIdempotent : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapIdempotent, Holds) {
  const auto s = mixed_space();
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::vector<double> coords(s.dim());
    for (std::size_t d = 0; d < s.dim(); ++d) {
      coords[d] = rng.uniform(-5.0, 15.0);  // includes out-of-range values
    }
    const Config once = s.snap(coords);
    const Config twice = s.snap(s.coords(once));
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapIdempotent, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
