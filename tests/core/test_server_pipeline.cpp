// Pipelined wire-protocol behaviour of the tuning server: many concurrent
// clients writing batches of verbs before reading replies, strict reply
// ordering, poisoned-connection isolation, REPORT+FETCH trajectory parity
// with FETCH/REPORT, and the max_connections admission cap — on both the
// event-loop and legacy threading modes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

#include "core/client.hpp"
#include "core/net.hpp"
#include "core/server.hpp"

namespace {

using harmony::ServerOptions;
using harmony::ServerThreading;
using harmony::TuningClient;
using harmony::TuningServer;

/// What one reply "block" in a pipelined exchange should look like.
enum class Reply {
  kOk,       // a line starting "OK"
  kConfig,   // a line starting "CONFIG"
  kJson,     // a line starting "{" (STATUS)
  kMetrics,  // Prometheus text, read until the "# EOF" line
  kLog,      // "LOG <n>" header plus n JSONL records
};

/// Run one fully pipelined session: the whole request script goes out in a
/// single write, then every expected reply block is validated in order.
/// Returns false (with a gtest failure) on any mismatch.
bool run_scripted_session(int port, int evals) {
  harmony::net::Socket sock = harmony::net::connect_loopback(port);
  if (!sock.valid()) {
    ADD_FAILURE() << "connect failed";
    return false;
  }

  std::string script = "HELLO pipelined\nPARAM INT x 0 200 1\nPARAM REAL y 0 1\n";
  std::vector<Reply> expected{Reply::kOk, Reply::kOk, Reply::kOk};
  script += "START " + std::to_string(evals + 8) + "\nFETCH\n";
  expected.push_back(Reply::kOk);
  expected.push_back(Reply::kConfig);
  for (int i = 0; i < evals; ++i) {
    // Mostly REPORT+FETCH, with plain FETCH (an idempotent re-fetch), a
    // split REPORT/FETCH pair, and introspection verbs mixed in.
    if (i % 5 == 3) {
      script += "REPORT " + std::to_string(100.0 - i) + "\nFETCH\n";
      expected.push_back(Reply::kOk);
      expected.push_back(Reply::kConfig);
    } else {
      script += "REPORT+FETCH " + std::to_string(100.0 - i) + "\n";
      expected.push_back(Reply::kConfig);
    }
    if (i % 4 == 1) {
      script += "STATUS\n";
      expected.push_back(Reply::kJson);
    }
    if (i % 8 == 5) {
      script += "FETCH\n";  // re-fetch of the pending candidate
      expected.push_back(Reply::kConfig);
    }
  }
  script += "METRICS\nLOG tail 2\nBEST\nBYE\n";
  expected.push_back(Reply::kMetrics);
  expected.push_back(Reply::kLog);
  expected.push_back(Reply::kConfig);
  expected.push_back(Reply::kOk);

  if (!sock.send_all(script)) {
    ADD_FAILURE() << "send failed";
    return false;
  }

  harmony::net::LineReader reader(sock);
  std::string line;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (!reader.read_line(line)) {
      ADD_FAILURE() << "connection closed at reply " << i << " of "
                    << expected.size();
      return false;
    }
    bool ok = false;
    switch (expected[i]) {
      case Reply::kOk:
        ok = line.rfind("OK", 0) == 0;
        break;
      case Reply::kConfig:
        ok = line.rfind("CONFIG", 0) == 0;
        break;
      case Reply::kJson:
        ok = !line.empty() && line.front() == '{';
        break;
      case Reply::kMetrics: {
        ok = true;
        while (line != "# EOF") {
          if (!reader.read_line(line)) {
            ok = false;
            break;
          }
        }
        break;
      }
      case Reply::kLog: {
        ok = line.rfind("LOG ", 0) == 0;
        const int n = ok ? std::atoi(line.c_str() + 4) : 0;
        for (int k = 0; ok && k < n; ++k) ok = reader.read_line(line);
        break;
      }
    }
    if (!ok) {
      ADD_FAILURE() << "reply " << i << " mismatched, got: " << line;
      return false;
    }
  }
  // BYE closes the connection once the replies are flushed.
  if (reader.read_line(line)) {
    ADD_FAILURE() << "expected EOF after BYE, got: " << line;
    return false;
  }
  return true;
}

class PipelinedServer : public ::testing::TestWithParam<ServerThreading> {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.threading = GetParam();
    server_ = std::make_unique<TuningServer>(opts);
    ASSERT_TRUE(server_->start());
  }
  void TearDown() override { server_->stop(); }

  std::unique_ptr<TuningServer> server_;
};

TEST_P(PipelinedServer, BatchedVerbsAnsweredInOrder) {
  EXPECT_TRUE(run_scripted_session(server_->port(), 12));
}

TEST_P(PipelinedServer, SixtyFourConcurrentPipelinedClients) {
  constexpr int kClients = 64;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  std::atomic<int> succeeded{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &succeeded] {
      if (run_scripted_session(server_->port(), 8)) succeeded.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), kClients);
  EXPECT_EQ(server_->sessions_served(), kClients);
}

TEST_P(PipelinedServer, OverlongLinePoisonsOnlyThatConnection) {
  // A fresh server with a small line limit for this test.
  server_->stop();
  ServerOptions opts;
  opts.threading = GetParam();
  opts.max_line_bytes = 128;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  harmony::net::Socket bad = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(bad.valid());
  // A healthy session on the same server, concurrently.
  std::thread good([&server] {
    TuningClient client;
    ASSERT_TRUE(client.connect(server.port(), "good"));
    ASSERT_TRUE(client.add_int("x", 0, 100));
    ASSERT_TRUE(client.start(10));
    while (auto config = client.fetch()) {
      ASSERT_TRUE(client.report(1.0));
    }
    client.bye();
  });

  const std::string garbage(512, 'x');
  ASSERT_TRUE(bad.send_all(garbage + "\n"));
  harmony::net::LineReader reader(bad);
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ERR line too long");
  // Poisoned: the server hangs up rather than parsing past the overflow.
  EXPECT_FALSE(reader.read_line().has_value());
  good.join();
  server.stop();
}

TEST_P(PipelinedServer, GarbageVerbGetsErrButConnectionStaysUsable) {
  harmony::net::Socket sock = harmony::net::connect_loopback(server_->port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  // Garbage verb and a valid session in one pipelined write.
  ASSERT_TRUE(
      sock.send_all(std::string_view("FROBNICATE a b\nHELLO still-alive\n")));
  auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR unknown verb", 0), 0u);
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK", 0), 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, PipelinedServer,
                         ::testing::Values(ServerThreading::kEventLoop,
                                           ServerThreading::kLegacy),
                         [](const auto& info) {
                           return info.param == ServerThreading::kEventLoop
                                      ? "EventLoop"
                                      : "Legacy";
                         });

/// REPORT+FETCH must walk the exact trajectory FETCH + REPORT walks: same
/// proposals in the same order, same best. (The golden-trajectory fixtures
/// pin the FETCH/REPORT path; this pins the combined verb to it.)
TEST(ReportAndFetch, MatchesSplitTrajectory) {
  const auto objective = [](const harmony::Config& c) {
    const auto x = std::get<std::int64_t>(c.values[0]);
    return static_cast<double>((x - 123) * (x - 123));
  };

  const auto run_session = [&](bool combined) {
    TuningServer server;
    EXPECT_TRUE(server.start());
    TuningClient client;
    EXPECT_TRUE(client.connect(server.port(), "traj"));
    EXPECT_TRUE(client.add_int("x", 0, 200));
    EXPECT_TRUE(client.start(40));
    std::vector<harmony::Config> seen;
    auto config = client.fetch();
    while (config) {
      seen.push_back(*config);
      const double obj = objective(*config);
      if (combined) {
        config = client.report_and_fetch(obj);
      } else {
        EXPECT_TRUE(client.report(obj));
        config = client.fetch();
      }
    }
    const auto best = client.best();
    EXPECT_TRUE(best.has_value());
    if (best) seen.push_back(*best);
    client.bye();
    server.stop();
    return seen;
  };

  const auto split = run_session(/*combined=*/false);
  const auto merged = run_session(/*combined=*/true);
  ASSERT_EQ(split.size(), merged.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    EXPECT_EQ(split[i].values, merged[i].values) << "step " << i;
  }
}

class MaxConnections : public ::testing::TestWithParam<ServerThreading> {};

TEST_P(MaxConnections, OverLimitConnectsRejectedThenRecovers) {
  ServerOptions opts;
  opts.threading = GetParam();
  opts.max_connections = 2;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  const auto hello = [&](harmony::net::Socket& s) {
    harmony::net::LineReader reader(s);
    EXPECT_TRUE(s.send_line("HELLO cap"));
    const auto reply = reader.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->rfind("OK", 0), 0u);
  };

  harmony::net::Socket c1 = harmony::net::connect_loopback(server.port());
  harmony::net::Socket c2 = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(c1.valid());
  ASSERT_TRUE(c2.valid());
  hello(c1);
  hello(c2);
  EXPECT_EQ(server.active_connections(), 2);

  // Third connection: ERR server busy, then disconnect.
  harmony::net::Socket c3 = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(c3.valid());
  harmony::net::LineReader r3(c3);
  const auto busy = r3.read_line();
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(*busy, "ERR server busy");
  EXPECT_FALSE(r3.read_line().has_value());

  // Dropping one admitted connection frees a slot (the server notices the
  // close asynchronously, so poll briefly).
  c1.close();
  for (int i = 0; i < 200 && server.active_connections() >= 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LT(server.active_connections(), 2);
  harmony::net::Socket c4 = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(c4.valid());
  hello(c4);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, MaxConnections,
                         ::testing::Values(ServerThreading::kEventLoop,
                                           ServerThreading::kLegacy),
                         [](const auto& info) {
                           return info.param == ServerThreading::kEventLoop
                                      ? "EventLoop"
                                      : "Legacy";
                         });

/// The legacy mode is still a fully working server, not just a code path
/// that compiles: a complete tuning loop converges through it.
TEST(LegacyServerMode, FetchReportLoopMinimizes) {
  ServerOptions opts;
  opts.threading = ServerThreading::kLegacy;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  TuningClient client;
  ASSERT_TRUE(client.connect(server.port(), "legacy"));
  ASSERT_TRUE(client.add_int("x", 0, 200));
  ASSERT_TRUE(client.start(80));
  auto config = client.fetch();
  while (config) {
    const auto x = std::get<std::int64_t>(config->values[0]);
    config = client.report_and_fetch(static_cast<double>((x - 77) * (x - 77)));
  }
  const auto best = client.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(best->values[0])), 77.0,
              10.0);
  client.bye();
  server.stop();
}

}  // namespace
