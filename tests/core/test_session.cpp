#include "core/session.hpp"

#include <gtest/gtest.h>

#include "core/random_search.hpp"

namespace {

using harmony::Parameter;
using harmony::RandomSearch;
using harmony::Session;

TEST(Session, FetchWritesBoundVariables) {
  Session session("app");
  std::int64_t buf = -1;
  double alpha = -1;
  std::string mode = "unset";
  session.add_int("buf", 1, 64, 1, &buf);
  session.add_real("alpha", 0.0, 1.0, &alpha);
  session.add_enum("mode", {"a", "b"}, &mode);
  ASSERT_TRUE(session.fetch());
  EXPECT_GE(buf, 1);
  EXPECT_LE(buf, 64);
  EXPECT_GE(alpha, 0.0);
  EXPECT_LE(alpha, 1.0);
  EXPECT_TRUE(mode == "a" || mode == "b");
  session.report(1.0);
}

TEST(Session, TypedAccessorsMatchBindings) {
  Session session("app");
  std::int64_t buf = 0;
  const auto h = session.add_int("buf", 1, 8, 1, &buf);
  ASSERT_TRUE(session.fetch());
  EXPECT_EQ(session.get_int(h), buf);
  session.report(1.0);
}

TEST(Session, TuningLoopConvergesOnQuadratic) {
  Session session("app");
  std::int64_t x = 0;
  session.add_int("x", 0, 200, 1, &x);
  int rounds = 0;
  while (session.fetch() && rounds < 500) {
    const double cost = static_cast<double>((x - 77) * (x - 77));
    session.report(cost);
    ++rounds;
  }
  ASSERT_TRUE(session.best().has_value());
  const auto best_x = std::get<std::int64_t>(session.best()->values[0]);
  EXPECT_NEAR(static_cast<double>(best_x), 77.0, 3.0);
  // After convergence the bound variable holds the best value.
  EXPECT_EQ(x, best_x);
}

TEST(Session, MinimalInstrumentationFootprint) {
  // The paper quotes ~10 lines to make a PETSc example tunable; this test is
  // that pattern end to end: declare, loop, done.
  Session session("petsc-sles");
  std::int64_t boundary = 0;
  session.add_int("boundary", 1, 99, 1, &boundary);
  while (session.fetch()) {
    session.report(std::abs(static_cast<double>(boundary) - 42.0));
  }
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(session.best()->values[0])),
              42.0, 2.0);
}

TEST(Session, FetchBeforeAddThrows) {
  Session session("app");
  EXPECT_THROW((void)session.fetch(), std::logic_error);
}

TEST(Session, AddAfterFetchThrows) {
  Session session("app");
  session.add_int("x", 0, 10);
  ASSERT_TRUE(session.fetch());
  EXPECT_THROW(session.add_int("y", 0, 10), std::logic_error);
  session.report(1.0);
}

TEST(Session, DoubleFetchWithoutReportThrows) {
  Session session("app");
  session.add_int("x", 0, 10);
  ASSERT_TRUE(session.fetch());
  EXPECT_THROW((void)session.fetch(), std::logic_error);
}

TEST(Session, ReportWithoutFetchThrows) {
  Session session("app");
  session.add_int("x", 0, 10);
  EXPECT_THROW(session.report(1.0), std::logic_error);
}

TEST(Session, CurrentBeforeFetchThrows) {
  Session session("app");
  session.add_int("x", 0, 10);
  EXPECT_THROW((void)session.current(), std::logic_error);
}

TEST(Session, CustomStrategyFactory) {
  Session session("app");
  session.add_int("x", 0, 20);
  session.set_strategy([](const harmony::ParamSpace& space) {
    return std::make_unique<RandomSearch>(space, 5, 9);
  });
  int fetches = 0;
  while (session.fetch()) {
    session.report(1.0);
    ++fetches;
  }
  EXPECT_EQ(fetches, 5);
}

TEST(Session, SetStrategyAfterFetchThrows) {
  Session session("app");
  session.add_int("x", 0, 10);
  ASSERT_TRUE(session.fetch());
  EXPECT_THROW(
      session.set_strategy([](const harmony::ParamSpace& space) {
        return std::make_unique<RandomSearch>(space, 5);
      }),
      std::logic_error);
  session.report(1.0);
}

TEST(Session, FetchCountAndAppName) {
  Session session("gs2");
  session.add_int("x", 0, 3);
  EXPECT_EQ(session.app_name(), "gs2");
  ASSERT_TRUE(session.fetch());
  session.report(2.0);
  ASSERT_TRUE(session.fetch());
  session.report(1.0);
  EXPECT_EQ(session.fetches(), 2);
}

}  // namespace
