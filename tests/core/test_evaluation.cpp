#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace {

using harmony::Config;
using harmony::EvalCache;
using harmony::EvaluationResult;
using harmony::Parameter;
using harmony::ParamSpace;

ParamSpace small_space() {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 9));
  s.add(Parameter::Integer("b", 0, 9));
  return s;
}

TEST(EvalCache, MissThenHit) {
  const auto s = small_space();
  EvalCache cache(s);
  const Config c = s.snap({1, 2});
  EXPECT_FALSE(cache.lookup(c).has_value());
  EvaluationResult r;
  r.objective = 3.5;
  cache.store(c, r);
  const auto hit = cache.lookup(c);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->objective, 3.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(EvalCache, DistinctPointsDistinctEntries) {
  const auto s = small_space();
  EvalCache cache(s);
  EvaluationResult r1;
  r1.objective = 1.0;
  EvaluationResult r2;
  r2.objective = 2.0;
  cache.store(s.snap({0, 0}), r1);
  cache.store(s.snap({0, 1}), r2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.lookup(s.snap({0, 1}))->objective, 2.0);
}

TEST(EvalCache, OverwriteReplaces) {
  const auto s = small_space();
  EvalCache cache(s);
  EvaluationResult r;
  r.objective = 1.0;
  cache.store(s.snap({3, 3}), r);
  r.objective = 9.0;
  cache.store(s.snap({3, 3}), r);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(s.snap({3, 3}))->objective, 9.0);
}

TEST(EvalCache, SnappedAliasesShareEntry) {
  const auto s = small_space();
  EvalCache cache(s);
  EvaluationResult r;
  r.objective = 4.0;
  cache.store(s.snap({2.4, 5.0}), r);
  EXPECT_TRUE(cache.lookup(s.snap({1.6, 5.4})).has_value());  // both snap to (2,5)
}

TEST(EvalCache, ClearResetsEverything) {
  const auto s = small_space();
  EvalCache cache(s);
  EvaluationResult r;
  cache.store(s.snap({0, 0}), r);
  (void)cache.lookup(s.snap({0, 0}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.lookup(s.snap({0, 0})).has_value());
}

TEST(EvalCache, StoresInvalidResults) {
  const auto s = small_space();
  EvalCache cache(s);
  cache.store(s.snap({1, 1}), EvaluationResult::infeasible());
  const auto hit = cache.lookup(s.snap({1, 1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->valid);
  EXPECT_TRUE(std::isinf(hit->objective));
}

TEST(EvaluationResult, InfeasibleShape) {
  const auto r = EvaluationResult::infeasible();
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(std::isinf(r.objective));
}

TEST(EvaluationResult, MetricsRoundtrip) {
  EvaluationResult r;
  r.metrics["comm_s"] = 0.25;
  EXPECT_DOUBLE_EQ(r.metrics.at("comm_s"), 0.25);
}

}  // namespace
