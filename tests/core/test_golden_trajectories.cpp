// Golden-trajectory tests: pin the exact evaluated-configuration sequence
// (including cache hits) and the final best for every strategy on three
// paper objectives (fig2 PETSc decomposition, fig4 POP block size, fig6 GS2
// resolution). The fixtures under tests/core/golden/ were captured from the
// pre-SearchController loops; the refactored controller must reproduce them
// bitwise (objectives are serialized as hexfloats). Regenerate deliberately
// with AH_UPDATE_GOLDEN=1.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/harmony.hpp"
#include "engine/batch_strategy.hpp"
#include "engine/parallel_driver.hpp"
#include "minigs2/minigs2.hpp"
#include "minipetsc/minipetsc.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

namespace {

using harmony::Config;
using harmony::EvaluationResult;

constexpr int kBudget = 40;

std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// One deterministic objective: a parameter space, a start point, and an
/// evaluator (models are owned by the capture).
struct GoldenObjective {
  std::string name;
  harmony::ParamSpace space;
  Config start;
  std::function<EvaluationResult(const Config&)> eval;
};

/// fig2-style: tune the row-decomposition boundaries of a blocked sparse
/// solve on four ranks (scaled down from bench/fig2_petsc_decomposition).
GoldenObjective petsc_objective() {
  GoldenObjective o;
  o.name = "petsc";
  auto A = std::make_shared<minipetsc::CsrMatrix>(
      minipetsc::dense_block_matrix({40, 20, 30, 10}, 0.6));
  const int n = A->rows();
  auto b = std::make_shared<minipetsc::Vec>(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b->size(); ++i) (*b)[i] = std::sin(0.05 * i);
  const auto machine = simcluster::presets::pentium4_quad();

  for (int i = 0; i < 3; ++i) {
    o.space.add(harmony::Parameter::Integer("b" + std::to_string(i), 1, n - 1));
  }
  const auto even = minipetsc::RowPartition::even(n, 4);
  o.start = o.space.default_config();
  for (int i = 0; i < 3; ++i) {
    o.space.set(o.start, "b" + std::to_string(i),
                std::int64_t{even.boundaries()[static_cast<std::size_t>(i)]});
  }
  harmony::ParamSpace space = o.space;
  o.eval = [A, b, machine, space, n](const Config& c) {
    std::vector<int> bounds;
    for (int i = 0; i < 3; ++i) {
      bounds.push_back(
          static_cast<int>(space.get_int(c, "b" + std::to_string(i))));
    }
    EvaluationResult r;
    try {
      const auto part = minipetsc::RowPartition::from_boundaries(n, 4, bounds);
      minipetsc::Vec x;
      const minipetsc::PcBlockJacobi pc(*A, part);
      const auto ksp = minipetsc::cg_solve(*A, *b, x, pc);
      if (!ksp.converged) return EvaluationResult::infeasible();
      r.objective = minipetsc::simulate_sles(machine, minipetsc::analyze(*A, part),
                                             ksp.iterations)
                        .total_s;
    } catch (const std::invalid_argument&) {
      return EvaluationResult::infeasible();
    }
    return r;
  };
  return o;
}

/// fig4-style: POP block-size tuning on one 480-CPU topology.
GoldenObjective pop_objective() {
  GoldenObjective o;
  o.name = "pop";
  // PopModel keeps a pointer to the grid, so the grid must outlive it.
  auto grid = std::make_shared<minipop::PopGrid>(minipop::PopGrid::production());
  auto model = std::make_shared<minipop::PopModel>(*grid);
  const auto pspace = minipop::make_param_space(32);
  auto mult = std::make_shared<decltype(minipop::evaluate_multipliers(
      pspace, minipop::default_config(pspace)))>(
      minipop::evaluate_multipliers(pspace, minipop::default_config(pspace)));
  const auto machine = simcluster::presets::nersc_sp3(30, 16);

  o.space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
  o.space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
  o.start = o.space.default_config();
  o.space.set(o.start, "block_x", std::int64_t{180});
  o.space.set(o.start, "block_y", std::int64_t{100});
  harmony::ParamSpace space = o.space;
  o.eval = [grid, model, mult, machine, space](const Config& c) {
    const minipop::BlockShape shape{
        static_cast<int>(space.get_int(c, "block_x")),
        static_cast<int>(space.get_int(c, "block_y"))};
    EvaluationResult r;
    try {
      r.objective = model->step_time(machine, 16, shape, *mult).total_s;
    } catch (const std::exception&) {
      // Extreme shapes can leave a rank with no ocean blocks at all.
      return EvaluationResult::infeasible();
    }
    return r;
  };
  return o;
}

/// fig6-style: GS2 resolution + node-count tuning.
GoldenObjective gs2_objective() {
  GoldenObjective o;
  o.name = "gs2";
  auto model = std::make_shared<minigs2::Gs2Model>();

  o.space.add(harmony::Parameter::Integer("negrid", 4, 16));
  o.space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  o.space.add(harmony::Parameter::Integer("nodes", 1, 64));
  o.start = o.space.default_config();
  harmony::ParamSpace space = o.space;
  o.eval = [model, space](const Config& c) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    EvaluationResult r;
    r.objective = model->run_time(machine, 2 * nodes, res,
                                  minigs2::Layout("lxyes"),
                                  minigs2::CollisionModel::None, 1000);
    return r;
  };
  return o;
}

std::vector<GoldenObjective> all_objectives() {
  std::vector<GoldenObjective> v;
  v.push_back(petsc_objective());
  v.push_back(pop_objective());
  v.push_back(gs2_objective());
  return v;
}

/// Serialize a trajectory: one line per history entry (config, hexfloat
/// objective, validity, cache flag) plus the final best.
std::string serialize(const harmony::ParamSpace& space, const harmony::History& h,
                      const std::optional<Config>& best, double best_objective) {
  std::ostringstream os;
  for (const auto& e : h.entries()) {
    os << "entry cfg={" << space.format(e.config) << "} obj=" << hexf(e.result.objective)
       << " valid=" << (e.result.valid ? 1 : 0) << " cached=" << (e.cached ? 1 : 0)
       << "\n";
  }
  os << "best cfg={" << (best ? space.format(*best) : std::string("none"))
     << "} obj=" << hexf(best_objective) << "\n";
  return os.str();
}

void check_golden(const std::string& fixture, const std::string& got) {
  const std::string path = std::string(AH_GOLDEN_DIR) + "/" + fixture + ".txt";
  if (std::getenv("AH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden fixture " << path;
    out << got;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (regenerate with AH_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  // Compare line by line so a drift points at the first diverging entry.
  std::istringstream ws(want.str());
  std::istringstream gs(got);
  std::string wline;
  std::string gline;
  int lineno = 0;
  while (std::getline(ws, wline)) {
    ++lineno;
    ASSERT_TRUE(static_cast<bool>(std::getline(gs, gline)))
        << fixture << ": trajectory ends early at line " << lineno;
    ASSERT_EQ(wline, gline) << fixture << ": first divergence at line " << lineno;
  }
  ASSERT_FALSE(static_cast<bool>(std::getline(gs, gline)))
      << fixture << ": trajectory has extra entries past line " << lineno;
}

/// The registry of serial strategies exercised on every objective, built
/// with the same options the fixtures were captured with.
std::unique_ptr<harmony::SearchStrategy> make_serial_strategy(
    const std::string& kind, const harmony::ParamSpace& space, const Config& start) {
  if (kind == "nelder-mead") {
    harmony::NelderMeadOptions o;
    o.max_stall = 30;
    o.max_restarts = 2;
    return std::make_unique<harmony::NelderMead>(space, o, start);
  }
  if (kind == "random") {
    return std::make_unique<harmony::RandomSearch>(space, 4 * kBudget, 5);
  }
  if (kind == "systematic") {
    return std::make_unique<harmony::SystematicSampler>(space, 5);
  }
  if (kind == "exhaustive") {
    return std::make_unique<harmony::Exhaustive>(space);
  }
  if (kind == "annealing") {
    harmony::AnnealingOptions o;
    return std::make_unique<harmony::SimulatedAnnealing>(space, o, start);
  }
  if (kind == "coordinate-descent") {
    return std::make_unique<harmony::CoordinateDescent>(space, start, 10, 8);
  }
  throw std::logic_error("unknown strategy kind " + kind);
}

const char* const kSerialKinds[] = {"nelder-mead", "random",    "systematic",
                                    "exhaustive",  "annealing", "coordinate-descent"};

void run_serial_goldens(const GoldenObjective& o) {
  for (const char* kind : kSerialKinds) {
    SCOPED_TRACE(std::string(o.name) + "/" + kind);
    auto strategy = make_serial_strategy(kind, o.space, o.start);
    harmony::TunerOptions topts;
    topts.max_iterations = kBudget;
    topts.max_proposals = kBudget * 64;
    harmony::Tuner tuner(o.space, topts);
    const auto result = tuner.run(*strategy, o.eval);
    check_golden(o.name + "_" + kind,
                 serialize(o.space, tuner.history(), result.best,
                           result.best_result.objective));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

harmony::ShortRunFn as_short_run(const GoldenObjective& o) {
  return [&o](const Config& c, int /*steps*/) {
    const EvaluationResult r = o.eval(c);
    harmony::ShortRunResult s;
    s.ok = r.valid && std::isfinite(r.objective);
    s.measured_s = s.ok ? r.objective : 0.0;
    s.warmup_s = 0.0;
    return s;
  };
}

}  // namespace

TEST(GoldenTrajectories, SerialPetsc) { run_serial_goldens(petsc_objective()); }
TEST(GoldenTrajectories, SerialPop) { run_serial_goldens(pop_objective()); }
TEST(GoldenTrajectories, SerialGs2) { run_serial_goldens(gs2_objective()); }

// The off-line short-run loop must walk the same trajectory as the fixtures
// captured from the pre-controller OfflineDriver.
TEST(GoldenTrajectories, OfflineShortRun) {
  for (const auto& o : all_objectives()) {
    SCOPED_TRACE(o.name);
    auto strategy = make_serial_strategy("nelder-mead", o.space, o.start);
    harmony::OfflineOptions opts;
    opts.max_runs = kBudget;
    opts.restart_overhead_s = 2.0;
    harmony::OfflineDriver driver(o.space, opts);
    const auto out = driver.tune(*strategy, as_short_run(o));
    check_golden(o.name + "_offline_nelder-mead",
                 serialize(o.space, driver.history(), out.best, out.best_measured_s));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Speculative Nelder-Mead through the pool>1 batch engine: the replayed
// serial state machine makes the recorded trajectory deterministic even
// though evaluations run concurrently.
TEST(GoldenTrajectories, ParallelSpeculativeNelderMead) {
  for (const auto& o : all_objectives()) {
    SCOPED_TRACE(o.name);
    harmony::NelderMeadOptions nmo;
    nmo.max_stall = 30;
    nmo.max_restarts = 2;
    harmony::engine::SpeculativeNelderMead strategy(o.space, nmo, o.start);
    harmony::engine::ParallelOfflineOptions opts;
    opts.max_runs = kBudget;
    opts.pool_size = 3;
    opts.restart_overhead_s = 2.0;
    harmony::engine::ParallelOfflineDriver driver(o.space, opts);
    const auto out = driver.tune(strategy, as_short_run(o));
    check_golden(o.name + "_parallel_speculative-nm",
                 serialize(o.space, driver.history(), out.best, out.best_measured_s));
    if (::testing::Test::HasFatalFailure()) return;
  }
}
