#include "core/constraint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hpp"

namespace {

using harmony::Config;
using harmony::ConstraintSet;
using harmony::FunctionConstraint;
using harmony::MonotoneConstraint;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::ProductConstraint;
using harmony::Rng;

ParamSpace boundary_space(int n_boundaries, int rows) {
  ParamSpace s;
  for (int i = 0; i < n_boundaries; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    s.add(Parameter::Integer(name, 1, rows - 1));
  }
  return s;
}

TEST(MonotoneConstraint, SortsAndSpreads) {
  const auto s = boundary_space(3, 100);
  const MonotoneConstraint c(0, 3, 1.0);
  std::vector<double> coords{40.0, 10.0, 10.0};  // unsorted with a tie
  c.project(s, coords);
  EXPECT_LT(coords[0], coords[1]);
  EXPECT_LT(coords[1], coords[2]);
  EXPECT_GE(coords[1] - coords[0], 1.0 - 1e-9);
  EXPECT_GE(coords[2] - coords[1], 1.0 - 1e-9);
}

TEST(MonotoneConstraint, RespectsUpperBound) {
  const auto s = boundary_space(3, 10);  // coords in [0, 8]
  const MonotoneConstraint c(0, 3, 1.0);
  std::vector<double> coords{8.0, 8.0, 8.0};
  c.project(s, coords);
  EXPECT_LE(coords[2], 8.0 + 1e-9);
  EXPECT_GE(coords[0], 0.0 - 1e-9);
  EXPECT_GE(coords[1] - coords[0], 1.0 - 1e-9);
  EXPECT_GE(coords[2] - coords[1], 1.0 - 1e-9);
}

TEST(MonotoneConstraint, AlreadyFeasibleUnchanged) {
  const auto s = boundary_space(3, 100);
  const MonotoneConstraint c(0, 3, 1.0);
  std::vector<double> coords{10.0, 20.0, 30.0};
  const auto before = coords;
  c.project(s, coords);
  EXPECT_EQ(coords, before);
}

TEST(MonotoneConstraint, PenaltyZeroWhenFeasible) {
  const auto s = boundary_space(2, 50);
  const MonotoneConstraint c(0, 2, 1.0);
  Config conf = s.snap({5.0, 10.0});
  EXPECT_DOUBLE_EQ(c.penalty(s, conf), 0.0);
}

TEST(MonotoneConstraint, PenaltyPositiveWhenViolated) {
  const auto s = boundary_space(2, 50);
  const MonotoneConstraint c(0, 2, 1.0);
  Config conf = s.snap({10.0, 5.0});
  EXPECT_GT(c.penalty(s, conf), 0.0);
}

TEST(MonotoneConstraint, BadArgsThrow) {
  EXPECT_THROW(MonotoneConstraint(0, 0), std::invalid_argument);
  EXPECT_THROW(MonotoneConstraint(0, 2, -1.0), std::invalid_argument);
  const auto s = boundary_space(2, 50);
  const MonotoneConstraint c(1, 5, 1.0);  // block exceeds dims
  std::vector<double> coords{1.0, 2.0};
  EXPECT_THROW(c.project(s, coords), std::invalid_argument);
}

// Property test: projection always yields a feasible, in-range, sorted block
// for random inputs — this is the invariant the PETSc decomposition search
// relies on (every simplex candidate must be a legal partition).
class MonotoneProjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotoneProjection, AlwaysFeasible) {
  const int n = 7;
  const int rows = 64;
  const auto s = boundary_space(n, rows);
  const MonotoneConstraint c(0, n, 1.0);
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> coords(n);
    for (auto& x : coords) x = rng.uniform(-20.0, 90.0);
    c.project(s, coords);
    for (int i = 0; i < n; ++i) {
      EXPECT_GE(coords[i], s.param(i).coord_min() - 1e-9);
      EXPECT_LE(coords[i], s.param(i).coord_max() + 1e-9);
      if (i > 0) {
        EXPECT_GE(coords[i] - coords[i - 1], 1.0 - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneProjection,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(ProductConstraint, SnapsToDivisorPair) {
  ParamSpace s;
  s.add(Parameter::Integer("nodes", 1, 480));
  s.add(Parameter::Integer("ppn", 1, 16));
  const ProductConstraint c(0, 1, 480);
  std::vector<double> coords{50.0, 3.0};  // nodes ~ 51
  c.project(s, coords);
  const Config conf = s.snap(coords);
  const auto nodes = std::get<std::int64_t>(conf.values[0]);
  const auto ppn = std::get<std::int64_t>(conf.values[1]);
  EXPECT_EQ(nodes * ppn, 480);
}

TEST(ProductConstraint, FeasiblePointKept) {
  ParamSpace s;
  s.add(Parameter::Integer("nodes", 1, 480));
  s.add(Parameter::Integer("ppn", 1, 16));
  const ProductConstraint c(0, 1, 480);
  std::vector<double> coords{59.0, 0.0};  // nodes=60 divides 480, ppn=8 in range
  c.project(s, coords);
  const Config conf = s.snap(coords);
  EXPECT_EQ(std::get<std::int64_t>(conf.values[0]), 60);
  EXPECT_EQ(std::get<std::int64_t>(conf.values[1]), 8);
}

TEST(ProductConstraint, PenaltyMeasuresDeviation) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 1, 100));
  s.add(Parameter::Integer("b", 1, 100));
  const ProductConstraint c(0, 1, 24);
  Config ok = s.snap({s.param(0).value_to_coord(std::int64_t{4}),
                      s.param(1).value_to_coord(std::int64_t{6})});
  EXPECT_DOUBLE_EQ(c.penalty(s, ok), 0.0);
  Config bad = s.snap({s.param(0).value_to_coord(std::int64_t{5}),
                       s.param(1).value_to_coord(std::int64_t{6})});
  EXPECT_DOUBLE_EQ(c.penalty(s, bad), 6.0);
}

TEST(ProductConstraint, BadProductThrows) {
  EXPECT_THROW(ProductConstraint(0, 1, 0), std::invalid_argument);
}

TEST(FunctionConstraint, AppliesCallback) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 10));
  const FunctionConstraint c(
      [](const ParamSpace&, std::vector<double>& coords) { coords[0] = 4.0; });
  std::vector<double> coords{9.0};
  c.project(s, coords);
  EXPECT_DOUBLE_EQ(coords[0], 4.0);
  EXPECT_DOUBLE_EQ(c.penalty(s, s.snap(coords)), 0.0);  // default penalty 0
}

TEST(FunctionConstraint, NullProjectionThrows) {
  EXPECT_THROW(FunctionConstraint(nullptr), std::invalid_argument);
}

TEST(ConstraintSet, AppliesInOrder) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 100));
  ConstraintSet set;
  set.add(std::make_shared<FunctionConstraint>(
      [](const ParamSpace&, std::vector<double>& c) { c[0] += 10.0; }));
  set.add(std::make_shared<FunctionConstraint>(
      [](const ParamSpace&, std::vector<double>& c) { c[0] *= 2.0; }));
  std::vector<double> coords{1.0};
  set.project(s, coords);
  EXPECT_DOUBLE_EQ(coords[0], 22.0);
  EXPECT_EQ(set.size(), 2u);
}

TEST(ConstraintSet, PenaltySums) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 100));
  ConstraintSet set;
  const auto add_pen = [](double v) {
    return std::make_shared<FunctionConstraint>(
        [](const ParamSpace&, std::vector<double>&) {},
        [v](const ParamSpace&, const Config&) { return v; });
  };
  set.add(add_pen(1.5));
  set.add(add_pen(2.5));
  EXPECT_DOUBLE_EQ(set.penalty(s, s.default_config()), 4.0);
}

TEST(ConstraintSet, NullConstraintThrows) {
  ConstraintSet set;
  EXPECT_THROW(set.add(nullptr), std::invalid_argument);
}

TEST(ConstraintSet, EmptySetIsNoop) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 10));
  const ConstraintSet set;
  EXPECT_TRUE(set.empty());
  std::vector<double> coords{3.0};
  set.project(s, coords);
  EXPECT_DOUBLE_EQ(coords[0], 3.0);
}

}  // namespace
