#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/client.hpp"
#include "core/net.hpp"
#include "core/server.hpp"
#include "core/strategy_registry.hpp"

namespace {

using harmony::StrategyRegistry;
using harmony::TuningClient;
using harmony::TuningServer;

class StrategyVerbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start());
    ASSERT_GT(server_.port(), 0);
  }

  void TearDown() override { server_.stop(); }

  TuningServer server_;
};

// ---- raw-socket protocol negotiation ----------------------------------------

TEST_F(StrategyVerbFixture, BareStrategyListsRegistry) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("STRATEGY"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  std::string expected = "OK";
  for (const auto& n : StrategyRegistry::names()) expected += " " + n;
  EXPECT_EQ(*reply, expected);
}

TEST_F(StrategyVerbFixture, UnknownStrategyRejected) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("STRATEGY simplex"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ERR unknown strategy simplex");
}

TEST_F(StrategyVerbFixture, MalformedOptionRejected) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("STRATEGY random samples"));
  auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR bad option 'samples'", 0), 0u) << *reply;

  ASSERT_TRUE(sock.send_line("STRATEGY random samples=many"));
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u) << *reply;
  EXPECT_NE(reply->find("samples"), std::string::npos) << *reply;
}

TEST_F(StrategyVerbFixture, StrategyAfterStartRejected) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("PARAM INT x 0 10 1"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("START 5"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("STRATEGY random"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ERR session already started");
}

TEST_F(StrategyVerbFixture, AcceptedStrategyEchoesName) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("STRATEGY annealing cooling=0.9 seed=3"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK annealing");
}

TEST_F(StrategyVerbFixture, GeneticBadOptionsRejectedBeforeStart) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());

  ASSERT_TRUE(sock.send_line("STRATEGY genetic population=1"));
  auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u) << *reply;
  EXPECT_NE(reply->find("population"), std::string::npos) << *reply;

  ASSERT_TRUE(sock.send_line("STRATEGY genetic popsize=8"));
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u) << *reply;
  EXPECT_NE(reply->find("popsize"), std::string::npos) << *reply;

  // The session survives both rejections and accepts a valid selection.
  ASSERT_TRUE(sock.send_line("STRATEGY genetic population=8 mutation=0.2"));
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK genetic");
}

TEST_F(StrategyVerbFixture, PipelinedGeneticNegotiationAndTuning) {
  auto sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);

  // The whole negotiation goes out as one pipelined burst: handshake,
  // strategy selection with options, parameter declarations, START, and the
  // first FETCH — then every reply is validated in order.
  const std::string burst =
      "HELLO ga-pipelined\n"
      "STRATEGY genetic population=6 generations=2 mutation=0.2 seed=4\n"
      "PARAM INT x 0 16 1\n"
      "PARAM INT y 0 16 1\n"
      "START 12\n"
      "FETCH\n";
  ASSERT_TRUE(sock.send_all(burst));

  auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK", 0), 0u) << *reply;  // HELLO
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK genetic");  // STRATEGY
  for (int i = 0; i < 3; ++i) {     // PARAM, PARAM, START
    reply = reader.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->rfind("OK", 0), 0u) << *reply;
  }
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->rfind("CONFIG ", 0), 0u) << *reply;

  // Steady state: pipelined REPORT+FETCH until the GA's plan (6 members x 2
  // generations = 12 evaluations, exactly the START budget) is exhausted.
  int fetched = 1;
  for (;;) {
    ASSERT_TRUE(sock.send_line("REPORT+FETCH 1.0"));
    reply = reader.read_line();
    ASSERT_TRUE(reply.has_value());
    if (*reply == "DONE") break;
    ASSERT_EQ(reply->rfind("CONFIG ", 0), 0u) << *reply;
    ++fetched;
    ASSERT_LE(fetched, 12);
  }
  EXPECT_EQ(fetched, 12);

  ASSERT_TRUE(sock.send_line("BEST"));
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("CONFIG ", 0), 0u) << *reply;
  ASSERT_TRUE(sock.send_line("BYE"));
}

// ---- TuningClient round trip ------------------------------------------------

TEST_F(StrategyVerbFixture, ClientListsStrategies) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "lister"));
  const auto names = client.strategies();
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, StrategyRegistry::names());
  client.bye();
}

TEST_F(StrategyVerbFixture, ClientSetStrategyUnknownFails) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "app"));
  EXPECT_FALSE(client.set_strategy("simplex"));
  EXPECT_NE(client.last_error().find("unknown strategy"), std::string::npos);
  // The session is still usable after the rejected line.
  EXPECT_TRUE(client.set_strategy("random", {{"samples", "16"}, {"seed", "2"}}));
  client.bye();
}

TEST_F(StrategyVerbFixture, ClientTunesWithSelectedStrategy) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "rand-app"));
  ASSERT_TRUE(client.add_int("x", 0, 200));
  ASSERT_TRUE(client.set_strategy("random", {{"samples", "64"}, {"seed", "9"}}));
  ASSERT_TRUE(client.start(30));
  int fetches = 0;
  while (auto config = client.fetch()) {
    ++fetches;
    const auto x = std::get<std::int64_t>(config->values[0]);
    ASSERT_TRUE(client.report(static_cast<double>((x - 123) * (x - 123))));
  }
  EXPECT_EQ(fetches, 30);  // budget bounds the random search
  const auto best = client.best();
  ASSERT_TRUE(best.has_value());
  client.bye();
}

TEST_F(StrategyVerbFixture, ClientTunesWithCoordinateDescent) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "cd-app"));
  ASSERT_TRUE(client.add_int("x", 0, 50));
  ASSERT_TRUE(client.add_int("y", 0, 50));
  ASSERT_TRUE(client.set_strategy("coordinate-descent", {{"max_sweeps", "8"}}));
  ASSERT_TRUE(client.start(60));
  while (auto config = client.fetch()) {
    const auto x = std::get<std::int64_t>(config->values[0]);
    const auto y = std::get<std::int64_t>(config->values[1]);
    const double fx = static_cast<double>((x - 31) * (x - 31));
    const double fy = static_cast<double>((y - 17) * (y - 17));
    ASSERT_TRUE(client.report(fx + fy));
  }
  const auto best = client.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(best->values[0])), 31.0,
              5.0);
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(best->values[1])), 17.0,
              5.0);
  client.bye();
}

}  // namespace
