// Multi-tenant behaviour of the tuning server: the batched REPORT+FETCH
// framing (BATCH verb) incl. its protocol edge cases, TENANT admission and
// per-tenant quotas with graceful `ERR retry-after` shedding, slow-client
// write backpressure (deferred reads under a pending-output cap), idle
// session reaping on the shard timer wheel, and a stop()-under-load stress
// that tears the server down with ~1k live sessions while reaper timers and
// deferred reads are armed.

#include <gtest/gtest.h>
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/net.hpp"
#include "core/server.hpp"
#include "obs/status.hpp"

namespace {

using harmony::Config;
using harmony::ServerOptions;
using harmony::ServerThreading;
using harmony::TuningClient;
using harmony::TuningServer;
namespace net = harmony::net;
namespace obs = harmony::obs;

bool eventually(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ---- BATCH framing ---------------------------------------------------------

TEST(BatchVerb, ProbeAdvertisesCapOnEventStack) {
  TuningServer server;  // event loop is the default transport
  ASSERT_TRUE(server.start());
  net::Socket sock = net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("BATCH"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK batch ", 0), 0u) << *reply;
  server.stop();
}

TEST(BatchVerb, LegacyStackAnswersCleanErr) {
  ServerOptions opts;
  opts.threading = ServerThreading::kLegacy;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  net::Socket sock = net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  net::LineReader reader(sock);
  // The probe's ERR is the negotiation signal; the connection stays usable.
  ASSERT_TRUE(sock.send_line("BATCH"));
  auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ERR batch unsupported on this transport");
  ASSERT_TRUE(sock.send_line("HELLO still-alive"));
  reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK", 0), 0u);
  server.stop();
}

TEST(BatchVerb, ClientNegotiationFallsBackOnLegacy) {
  ServerOptions opts;
  opts.threading = ServerThreading::kLegacy;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  TuningClient client;
  ASSERT_TRUE(client.connect(server.port(), "probe"));
  EXPECT_FALSE(client.batch_limit().has_value());
  client.bye();
  server.stop();

  TuningServer event_server;
  ASSERT_TRUE(event_server.start());
  TuningClient event_client;
  ASSERT_TRUE(event_client.connect(event_server.port(), "probe"));
  const auto limit = event_client.batch_limit();
  ASSERT_TRUE(limit.has_value());
  EXPECT_GE(*limit, 1);
  event_client.bye();
  event_server.stop();
}

/// A batched session must walk the exact trajectory the unbatched
/// REPORT+FETCH loop walks when fed the same objective sequence: same
/// proposals in the same order, same best.
TEST(BatchVerb, BatchedTrajectoryMatchesUnbatched) {
  // Objective depends only on the step index, so the value sequence is
  // identical whether values ride one per REPORT+FETCH or many per BATCH.
  const auto value_at = [](int i) { return 100.0 - 7.0 * i + 0.25 * i * i; };

  const auto run_session = [&](int batch) {
    TuningServer server;
    EXPECT_TRUE(server.start());
    TuningClient client;
    EXPECT_TRUE(client.connect(server.port(), "traj"));
    EXPECT_TRUE(client.add_int("x", 0, 200));
    EXPECT_TRUE(client.start(24));
    std::vector<Config> seen;
    auto first = client.fetch();
    EXPECT_TRUE(first.has_value());
    if (first) seen.push_back(*first);
    int step = 0;
    if (batch <= 1) {
      while (auto next = client.report_and_fetch(value_at(step))) {
        seen.push_back(*next);
        ++step;
      }
    } else {
      for (;;) {
        std::vector<double> values;
        for (int i = 0; i < batch; ++i) values.push_back(value_at(step + i));
        const auto configs = client.report_and_fetch_batch(values);
        EXPECT_TRUE(configs.has_value()) << client.last_error();
        if (!configs) break;
        for (const auto& c : *configs) seen.push_back(c);
        step += batch;
        if (static_cast<int>(configs->size()) < batch) break;  // budget done
      }
    }
    const auto best = client.best();
    EXPECT_TRUE(best.has_value());
    if (best) seen.push_back(*best);
    client.bye();
    server.stop();
    return seen;
  };

  const auto unbatched = run_session(1);
  const auto batched = run_session(3);
  ASSERT_EQ(unbatched.size(), batched.size());
  for (std::size_t i = 0; i < unbatched.size(); ++i) {
    EXPECT_EQ(unbatched[i].values, batched[i].values) << "step " << i;
  }
}

/// Raw-socket fixture with a started session awaiting a report: the state
/// every BATCH edge case below wants to poke at.
class BatchEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<TuningServer>();
    ASSERT_TRUE(server_->start());
    sock_ = net::connect_loopback(server_->port());
    ASSERT_TRUE(sock_.valid());
    reader_ = std::make_unique<net::LineReader>(sock_);
    ASSERT_TRUE(sock_.send_all(std::string_view(
        "HELLO edge\nPARAM INT x 0 100 1\nSTART 40\nFETCH\n")));
    std::string line;
    for (int i = 0; i < 3; ++i) {  // HELLO, PARAM, START
      ASSERT_TRUE(reader_->read_line(line));
      ASSERT_EQ(line.rfind("OK", 0), 0u) << line;
    }
    ASSERT_TRUE(reader_->read_line(line));
    ASSERT_EQ(line.rfind("CONFIG", 0), 0u) << line;
  }
  void TearDown() override { server_->stop(); }

  std::string transact(const std::string& line) {
    EXPECT_TRUE(sock_.send_line(line));
    std::string reply;
    EXPECT_TRUE(reader_->read_line(reply));
    return reply;
  }

  std::unique_ptr<TuningServer> server_;
  net::Socket sock_;
  std::unique_ptr<net::LineReader> reader_;
};

TEST_F(BatchEdgeCases, TruncatedBatchRejectedAtomicallyThenRecovers) {
  // 3 promised, 2 delivered: one ERR for the whole line, nothing consumed.
  EXPECT_EQ(transact("BATCH 3 1.0 2.0"), "ERR batch count mismatch");
  // The pending candidate is still reportable — the batch consumed nothing.
  EXPECT_EQ(transact("BATCH 1 5.0").rfind("CONFIG", 0), 0u);
}

TEST_F(BatchEdgeCases, OverlongBatchRejected) {
  EXPECT_EQ(transact("BATCH 1 1.0 2.0"), "ERR batch count mismatch");
}

TEST_F(BatchEdgeCases, BadCountRejected) {
  EXPECT_EQ(transact("BATCH 0"), "ERR bad batch count");
  EXPECT_EQ(transact("BATCH -2 1.0 2.0"), "ERR bad batch count");
  EXPECT_EQ(transact("BATCH wat 1.0"), "ERR bad batch count");
  EXPECT_EQ(transact("BATCH 100000 1.0"), "ERR bad batch count");
}

TEST_F(BatchEdgeCases, TraceTokenInterleavedInsideBatchRejected) {
  // A trace token belongs at the end of the line; one interleaved between
  // values is not a number and must poison the whole batch, not half of it.
  EXPECT_EQ(transact("BATCH 2 T=0123456789abcdef-0123456789abcdef 2.0"),
            "ERR bad objective value in batch");
  // Still atomically recoverable.
  EXPECT_EQ(transact("BATCH 1 5.0").rfind("CONFIG", 0), 0u);
}

TEST_F(BatchEdgeCases, TrailingTraceTokenAcceptedAndStripped) {
  EXPECT_EQ(
      transact("BATCH 2 5.0 6.0 T=0123456789abcdef-0123456789abcdef")
          .rfind("CONFIG", 0),
      0u);
  std::string second;
  ASSERT_TRUE(reader_->read_line(second));  // two values -> two reply lines
  EXPECT_EQ(second.rfind("CONFIG", 0), 0u);
}

TEST_F(BatchEdgeCases, NothingToReportWithoutOutstandingFetch) {
  // The fixture's candidate is outstanding; report it, then BATCH again
  // without fetching: the session has nothing pending to report against.
  EXPECT_EQ(transact("BATCH 1 5.0").rfind("CONFIG", 0), 0u);
  EXPECT_EQ(transact("REPORT 1.0"), "OK");
  EXPECT_EQ(transact("BATCH 1 5.0"), "ERR nothing to report");
}

TEST_F(BatchEdgeCases, BudgetExhaustionAnswersDoneTail) {
  // Budget is 40 and one candidate is outstanding: a 64-value batch must
  // answer CONFIG while candidates remain and DONE for the whole tail,
  // exactly 64 reply lines in order.
  std::string line = "BATCH 64";
  for (int i = 0; i < 64; ++i) line += " " + std::to_string(50.0 + i);
  ASSERT_TRUE(sock_.send_line(line));
  int configs = 0;
  int dones = 0;
  std::string reply;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(reader_->read_line(reply));
    if (reply.rfind("CONFIG", 0) == 0) {
      EXPECT_EQ(dones, 0) << "CONFIG after DONE at reply " << i;
      ++configs;
    } else {
      ASSERT_EQ(reply, "DONE");
      ++dones;
    }
  }
  EXPECT_GT(configs, 0);
  EXPECT_GT(dones, 0);
  EXPECT_EQ(configs + dones, 64);
}

// ---- TENANT admission and quotas ------------------------------------------

TEST(TenantQuota, OverQuotaShedWithRetryAfterAndSeatReuse) {
  ServerOptions opts;
  opts.tenant_quota = 2;
  opts.retry_after_s = 7;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  TuningClient a;
  TuningClient b;
  ASSERT_TRUE(a.connect(server.port(), "a"));
  ASSERT_TRUE(b.connect(server.port(), "b"));
  ASSERT_TRUE(a.set_tenant("acme-quota"));
  ASSERT_TRUE(b.set_tenant("acme-quota"));

  // Third session of the same tenant: graceful shed, then disconnect.
  net::Socket c = net::connect_loopback(server.port());
  ASSERT_TRUE(c.valid());
  net::LineReader rc(c);
  ASSERT_TRUE(c.send_line("TENANT acme-quota"));
  const auto shed = rc.read_line();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->rfind("ERR retry-after 7", 0), 0u) << *shed;
  EXPECT_FALSE(rc.read_line().has_value());  // server closed the connection

  // A different tenant is unaffected by acme's full quota.
  TuningClient other;
  ASSERT_TRUE(other.connect(server.port(), "other"));
  ASSERT_TRUE(other.set_tenant("globex-quota"));
  other.bye();

  // Closing an admitted session frees its seat for the next comer.
  a.bye();
  ASSERT_TRUE(eventually([&] {
    for (const auto& t : obs::StatusRegistry::global().tenants()) {
      if (t.name == "acme-quota") return t.sessions < 2;
    }
    return false;
  }));
  TuningClient d;
  ASSERT_TRUE(d.connect(server.port(), "d"));
  EXPECT_TRUE(d.set_tenant("acme-quota"));
  d.bye();
  b.bye();
  server.stop();

  // The shed is visible on the tenant rollup.
  for (const auto& t : obs::StatusRegistry::global().tenants()) {
    if (t.name == "acme-quota") {
      EXPECT_GE(t.shed, 1u);
    }
  }
}

TEST(TenantQuota, TenantVerbValidation) {
  TuningServer server;
  ASSERT_TRUE(server.start());
  net::Socket sock = net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  net::LineReader reader(sock);
  const auto transact = [&](const std::string& line) {
    EXPECT_TRUE(sock.send_line(line));
    std::string reply;
    EXPECT_TRUE(reader.read_line(reply));
    return reply;
  };
  EXPECT_EQ(transact("TENANT"), "ERR TENANT takes one name (<= 64 chars)");
  EXPECT_EQ(transact("TENANT " + std::string(65, 'x')),
            "ERR TENANT takes one name (<= 64 chars)");
  EXPECT_EQ(transact("TENANT acme-val"), "OK tenant acme-val");
  EXPECT_EQ(transact("TENANT acme-val"), "ERR tenant already set");
  server.stop();
}

TEST(TenantQuota, TenantRejectedAfterStart) {
  TuningServer server;
  ASSERT_TRUE(server.start());
  net::Socket sock = net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  net::LineReader reader(sock);
  ASSERT_TRUE(
      sock.send_all(std::string_view("PARAM INT x 0 9 1\nSTART 5\nTENANT late\n")));
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line.rfind("OK", 0), 0u);
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line.rfind("OK", 0), 0u);
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "ERR session already started");
  server.stop();
}

// ---- slow-client backpressure ----------------------------------------------

/// A client that pipelines far more requests than it reads replies must not
/// grow the server's write queue without bound: past the pending-output cap
/// the shard defers the connection's reads, resumes once the client drains,
/// and every reply still arrives in order.
TEST(Backpressure, SlowReaderGetsReadsDeferredNotUnboundedBuffering) {
  ServerOptions opts;
  opts.max_pending_out_bytes = 32 * 1024;
  opts.reap_tick_ms = 10;  // fast resume sweep
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  auto& bp = obs::StatusRegistry::global().backpressure();
  const auto paused_events_before =
      bp.paused_total.load(std::memory_order_relaxed);

  net::Socket sock = net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  // Enough STATUS requests that the replies (a few hundred bytes of JSON
  // each) overflow what the kernel will absorb: TCP send-buffer autotuning
  // grows the server-side socket to tcp_wmem[2] (typically 4 MiB) before
  // sendmsg returns EAGAIN, and only then does the ByteRing see a backlog.
  constexpr int kRequests = 30000;
  std::string script;
  script.reserve(kRequests * 7);
  for (int i = 0; i < kRequests; ++i) script += "STATUS\n";
  ASSERT_TRUE(sock.send_all(script));

  // Without reading a byte: the server must hit the cap and defer reads.
  ASSERT_TRUE(eventually([&] {
    return bp.paused_total.load(std::memory_order_relaxed) >
           paused_events_before;
  }))
      << "server never paused reads for the slow client";

  // Now drain: every reply arrives, and the pause clears once under cap.
  net::LineReader reader(sock);
  std::string line;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(reader.read_line(line)) << "reply " << i << " missing";
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
  }
  EXPECT_TRUE(eventually(
      [&] { return bp.paused.load(std::memory_order_relaxed) == 0; }));
  ASSERT_TRUE(sock.send_line("BYE"));
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line.rfind("OK", 0), 0u);
  server.stop();
}

// ---- idle-session reaping ---------------------------------------------------

TEST(IdleReaper, IdleSessionEvictedActiveSessionSurvives) {
  ServerOptions opts;
  opts.idle_timeout_ms = 80;
  opts.reap_tick_ms = 10;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  net::Socket idle = net::connect_loopback(server.port());
  ASSERT_TRUE(idle.valid());
  net::LineReader idle_reader(idle);
  ASSERT_TRUE(idle.send_line("HELLO sleepy"));
  std::string line;
  ASSERT_TRUE(idle_reader.read_line(line));
  ASSERT_EQ(line.rfind("OK", 0), 0u);

  // An active session on the same server keeps traffic flowing (each STATUS
  // resets its idle clock) while the quiet one ages out.
  net::Socket active = net::connect_loopback(server.port());
  ASSERT_TRUE(active.valid());
  net::LineReader active_reader(active);
  std::atomic<bool> reaped{false};
  std::thread keepalive([&] {
    std::string reply;
    while (!reaped.load()) {
      if (!active.send_line("STATUS") || !active_reader.read_line(reply)) {
        ADD_FAILURE() << "active session dropped";
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // The idle connection gets the eviction notice, then EOF.
  ASSERT_TRUE(idle_reader.read_line(line));
  EXPECT_EQ(line, "ERR idle timeout");
  EXPECT_FALSE(idle_reader.read_line().has_value());
  reaped.store(true);
  keepalive.join();

  // The active session is still serving after the reap.
  ASSERT_TRUE(active.send_line("BYE"));
  ASSERT_TRUE(active_reader.read_line(line));
  EXPECT_EQ(line.rfind("OK", 0), 0u);
  server.stop();
}

// ---- stop() under a thousand live sessions ----------------------------------

/// Best-effort soft-fd-limit raise for the 1k-session stress (CI runners
/// default to 1024). Returns the number of *sessions* the budget allows,
/// each costing two fds (client + server side) plus headroom.
int session_budget(int want_sessions) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 256;
  const rlim_t want_fds = 2 * static_cast<rlim_t>(want_sessions) + 256;
  if (rl.rlim_cur < want_fds) {
    rlimit raised = rl;
    raised.rlim_cur =
        rl.rlim_max == RLIM_INFINITY ? want_fds : std::min(want_fds, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  if (rl.rlim_cur == RLIM_INFINITY) return want_sessions;
  const auto budget = static_cast<int>((rl.rlim_cur - 256) / 2);
  return std::max(16, std::min(want_sessions, budget));
}

/// stop() while ~1k sessions are live, reaper deadlines are armed, and a
/// slice of connections sits in the deferred-read (backpressure) state: no
/// tick, wheel callback or deferred-read re-arm may touch a destroyed
/// connection. The assertions are liveness (stop returns, accepts stopped);
/// the real teeth are TSan/ASan on this test.
TEST(ShardedStopStress, StopUnderThousandLiveSessionsWithReaperArmed) {
  const int sessions = session_budget(1000);
  ServerOptions opts;
  opts.reactor_threads = 4;
  opts.idle_timeout_ms = 40;  // reaper fires mid-shutdown window
  opts.reap_tick_ms = 10;
  opts.max_pending_out_bytes = 8 * 1024;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  std::vector<net::Socket> socks;
  socks.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    net::Socket s = net::connect_loopback(server.port());
    if (!s.valid()) break;  // fd budget mis-estimated: stress what connected
    // A third of the sessions pile up pending output they never read
    // (entering the deferred-read state); the rest go quiet so the reaper
    // has live deadlines to fire during the stop window.
    std::string script = "HELLO stress\n";
    if (i % 3 == 0) {
      for (int k = 0; k < 200; ++k) script += "STATUS\n";
    }
    (void)s.send_all(script);
    socks.push_back(std::move(s));
  }
  EXPECT_GE(socks.size(), 16u);

  // Let reaper deadlines arm (and some fire) with all sessions live.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.stop();

  // Stopped means stopped: no new admissions.
  net::Socket late = net::connect_loopback(server.port());
  if (late.valid()) {
    net::LineReader reader(late);
    EXPECT_FALSE(reader.read_line().has_value());
  }
}

}  // namespace
