#include "core/point_key.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/flat_map.hpp"
#include "core/param_space.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace harmony {
namespace {

ParamSpace fig6_space() {
  ParamSpace space;
  space.add(Parameter::Integer("negrid", 4, 16));
  space.add(Parameter::Integer("ntheta", 10, 32, 2));
  space.add(Parameter::Integer("nodes", 1, 64));
  return space;
}

ParamSpace mixed_space() {
  ParamSpace space;
  space.add(Parameter::Integer("blocks", 8, 64, 8));
  space.add(Parameter::Real("relax", 0.1, 1.9));
  space.add(Parameter::Enum("pc", {"jacobi", "bjacobi", "asm", "ilu"}));
  return space;
}

/// The tentpole invariant: PointKey equality classes match ParamSpace::key
/// equality classes exactly, pair by pair, and equal keys share the hash.
void expect_equivalence(const ParamSpace& space, const std::vector<Config>& configs) {
  std::vector<PointKey> keys;
  std::vector<std::string> strings;
  keys.reserve(configs.size());
  strings.reserve(configs.size());
  for (const auto& c : configs) {
    keys.emplace_back(space, c);
    strings.push_back(space.key(c));
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t j = i; j < configs.size(); ++j) {
      const bool point_eq = keys[i] == keys[j];
      const bool string_eq = strings[i] == strings[j];
      EXPECT_EQ(point_eq, string_eq)
          << "configs " << i << " ('" << strings[i] << "') and " << j << " ('"
          << strings[j] << "') disagree";
      if (point_eq) {
        EXPECT_EQ(keys[i].hash(), keys[j].hash());
      }
    }
  }
}

TEST(PointKey, MatchesStringKeyOnIntegerLattice) {
  const auto space = fig6_space();
  Rng rng(7);
  std::vector<Config> configs;
  for (int i = 0; i < 60; ++i) configs.push_back(space.random_config(rng));
  // Duplicates on purpose: same lattice point, same key both ways.
  configs.push_back(configs.front());
  expect_equivalence(space, configs);
}

TEST(PointKey, MatchesStringKeyOnMixedSpaceWithSnappedReals) {
  const auto space = mixed_space();
  Rng rng(11);
  std::vector<Config> configs;
  for (int i = 0; i < 40; ++i) configs.push_back(space.random_config(rng));
  // Snapped points: arbitrary continuous coordinates (including out-of-range
  // ones, which snap() repairs by clamping) go through the same lattice
  // equality classes as their string keys.
  for (int i = 0; i < 40; ++i) {
    const std::vector<double> coords = {rng.uniform(-10.0, 100.0),
                                        rng.uniform(-5.0, 5.0),
                                        rng.uniform(-2.0, 9.0)};
    configs.push_back(space.snap(coords));
  }
  expect_equivalence(space, configs);
}

TEST(PointKey, RealCanonicalizationFollowsSixDigitRendering) {
  ParamSpace space;
  space.add(Parameter::Real("x", 0.0, 10.0));

  // Differ only past the 6th significant digit: same "%g" rendering, so the
  // string keys collide — the PointKeys must collide identically.
  const Config a{{Value{1.2345678}}};
  const Config b{{Value{1.23456779}}};
  ASSERT_EQ(space.key(a), space.key(b));
  EXPECT_EQ(PointKey(space, a), PointKey(space, b));

  // Differ within 6 significant digits: distinct both ways.
  const Config c{{Value{1.2345}}};
  const Config d{{Value{1.2346}}};
  ASSERT_NE(space.key(c), space.key(d));
  EXPECT_FALSE(PointKey(space, c) == PointKey(space, d));

  // -0.0 renders "-0" versus "0": distinct string keys, distinct PointKeys.
  const Config zp{{Value{0.0}}};
  const Config zn{{Value{-0.0}}};
  ASSERT_NE(space.key(zp), space.key(zn));
  EXPECT_FALSE(PointKey(space, zp) == PointKey(space, zn));
}

TEST(PointKey, OutOfRangeRepairSharesKeyWithClampedValue) {
  const auto space = fig6_space();
  // Coordinates far outside the lattice are clamped by snap(): the repaired
  // config must key identically (string and index space) to the edge point.
  const Config repaired = space.snap({-100.0, 1e6, 3.0});
  const Config edge{{Value{std::int64_t{4}}, Value{std::int64_t{32}},
                     Value{std::int64_t{4}}}};
  ASSERT_EQ(space.key(repaired), space.key(edge));
  EXPECT_EQ(PointKey(space, repaired), PointKey(space, edge));
}

TEST(PointKey, EnumSlotsAreChoiceIndices) {
  ParamSpace space;
  space.add(Parameter::Enum("pc", {"jacobi", "bjacobi", "asm"}));
  const PointKey k(space, Config{{Value{std::string("bjacobi")}}});
  ASSERT_EQ(k.size(), 1u);
  EXPECT_EQ(k.slot(0), 1u);
  EXPECT_THROW(PointKey(space, Config{{Value{std::string("none")}}}),
               std::invalid_argument);
}

TEST(PointKey, DimensionMismatchThrows) {
  const auto space = fig6_space();
  EXPECT_THROW(PointKey(space, Config{{Value{std::int64_t{4}}}}),
               std::invalid_argument);
}

TEST(PointKey, CopyMoveAndScratchReuse) {
  const auto space = mixed_space();
  Rng rng(3);
  const Config c1 = space.random_config(rng);
  const Config c2 = space.random_config(rng);

  PointKey scratch;
  EXPECT_TRUE(scratch.empty());
  scratch.assign(space, c1);
  const PointKey k1 = scratch;  // deep copy
  scratch.assign(space, c2);    // reuse does not disturb the copy
  EXPECT_EQ(k1, PointKey(space, c1));
  EXPECT_EQ(scratch, PointKey(space, c2));

  PointKey moved = std::move(scratch);
  EXPECT_EQ(moved, PointKey(space, c2));
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from keys reset to empty
  EXPECT_TRUE(scratch.empty());
  scratch.assign(space, c1);  // and stay reusable
  EXPECT_EQ(scratch, k1);
}

TEST(PointKey, HeapSpillBeyondInlineSlots) {
  ParamSpace space;
  for (int i = 0; i < 10; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    space.add(Parameter::Integer(name, 0, 99));
  }
  ASSERT_GT(space.dim(), PointKey::kInlineSlots);
  Rng rng(17);
  std::vector<Config> configs;
  for (int i = 0; i < 20; ++i) configs.push_back(space.random_config(rng));
  configs.push_back(configs[0]);
  expect_equivalence(space, configs);

  // Spilled keys still deep-copy and survive the source's reuse.
  PointKey scratch(space, configs[0]);
  const PointKey copy = scratch;
  scratch.assign(space, configs[1]);
  EXPECT_EQ(copy, PointKey(space, configs[0]));
}

// ---------------------------------------------------------------------------
// FlatPointMap (the flat cache table under EvalCache / ConcurrentEvalCache)

ParamSpace flat_cache_space() {
  ParamSpace space;
  space.add(Parameter::Integer("a", 0, 4095));
  space.add(Parameter::Integer("b", 0, 4095));
  return space;
}

Config int2(std::int64_t a, std::int64_t b) {
  return Config{{Value{a}, Value{b}}};
}

TEST(FlatCacheMap, InsertFindEraseAcrossGrowth) {
  const auto space = flat_cache_space();
  FlatPointMap<int> map;
  EXPECT_TRUE(map.empty());
  // Enough entries to force several growth rehashes from the 16-slot start.
  for (std::int64_t i = 0; i < 500; ++i) {
    map.insert_or_assign(PointKey(space, int2(i, i * 7 % 4096)), static_cast<int>(i));
  }
  EXPECT_EQ(map.size(), 500u);
  for (std::int64_t i = 0; i < 500; ++i) {
    const int* v = map.find(PointKey(space, int2(i, i * 7 % 4096)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(map.find(PointKey(space, int2(1000, 0))), nullptr);

  // Erase every third entry; everything else must stay reachable even where
  // the backward shift has to move probe chains across the holes.
  std::size_t erased = 0;
  for (std::int64_t i = 0; i < 500; i += 3) {
    EXPECT_TRUE(map.erase(PointKey(space, int2(i, i * 7 % 4096))));
    ++erased;
  }
  EXPECT_FALSE(map.erase(PointKey(space, int2(0, 0))));  // already gone
  EXPECT_EQ(map.size(), 500u - erased);
  for (std::int64_t i = 0; i < 500; ++i) {
    const int* v = map.find(PointKey(space, int2(i, i * 7 % 4096)));
    if (i % 3 == 0) {
      EXPECT_EQ(v, nullptr) << i;
    } else {
      ASSERT_NE(v, nullptr) << i;
      EXPECT_EQ(*v, static_cast<int>(i));
    }
  }
}

TEST(FlatCacheMap, TryEmplaceAndOverwrite) {
  const auto space = flat_cache_space();
  FlatPointMap<int> map;
  const PointKey k(space, int2(1, 2));
  auto [v1, inserted1] = map.try_emplace(k);
  EXPECT_TRUE(inserted1);
  *v1 = 42;
  auto [v2, inserted2] = map.try_emplace(k);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 42);
  map.insert_or_assign(k, 7);
  EXPECT_EQ(*map.find(k), 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatCacheMap, ClearKeepsTableUsable) {
  const auto space = flat_cache_space();
  FlatPointMap<int> map;
  for (std::int64_t i = 0; i < 50; ++i) {
    map.insert_or_assign(PointKey(space, int2(i, 0)), 1);
  }
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(PointKey(space, int2(3, 0))), nullptr);
  map.insert_or_assign(PointKey(space, int2(3, 0)), 9);
  EXPECT_EQ(*map.find(PointKey(space, int2(3, 0))), 9);
}

TEST(FlatCacheMap, ForEachVisitsEveryEntry) {
  const auto space = flat_cache_space();
  FlatPointMap<int> map;
  for (std::int64_t i = 0; i < 20; ++i) {
    map.insert_or_assign(PointKey(space, int2(i, i)), static_cast<int>(i));
  }
  std::set<int> seen;
  map.for_each([&](const PointKey& k, const int& v) {
    EXPECT_FALSE(k.empty());
    seen.insert(v);
  });
  EXPECT_EQ(seen.size(), 20u);
}

// ---------------------------------------------------------------------------
// Hot-path pieces riding on the key switch

TEST(HotPathEvalCache, PointKeyOverloadsCountHitsAndMisses) {
  const auto space = flat_cache_space();
  EvalCache cache(space);
  PointKey k(space, int2(10, 20));

  EXPECT_EQ(cache.lookup(k), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EvaluationResult r;
  r.objective = 2.5;
  cache.store(k, r);
  const EvaluationResult* hit = cache.lookup(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->objective, 2.5);
  EXPECT_EQ(cache.hits(), 1u);

  // The Config overloads share the same table and counters.
  const auto via_config = cache.lookup(int2(10, 20));
  ASSERT_TRUE(via_config.has_value());
  EXPECT_DOUBLE_EQ(via_config->objective, 2.5);
  EXPECT_EQ(cache.hits(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(HotPathMetricMap, MapSemanticsOnFlatStorage) {
  MetricMap m;
  EXPECT_TRUE(m.empty());
  m["warmup_s"] = 0.5;
  m["comm_s"] = 0.25;
  m["warmup_s"] = 0.75;  // overwrite, no duplicate
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.at("warmup_s"), 0.75);
  EXPECT_EQ(m.count("comm_s"), 1u);
  EXPECT_EQ(m.count("absent"), 0u);
  EXPECT_THROW(static_cast<void>(m.at("absent")), std::out_of_range);

  // Iteration is sorted by name (deterministic CSV/report ordering).
  std::vector<std::string> names;
  for (const auto& [k, v] : m) names.push_back(k);
  EXPECT_EQ(names, (std::vector<std::string>{"comm_s", "warmup_s"}));

  MetricMap other;
  other["comm_s"] = 0.25;
  other["warmup_s"] = 0.75;
  EXPECT_TRUE(m == other);
  other["comm_s"] = 0.3;
  EXPECT_FALSE(m == other);
}

TEST(HotPathValueRender, AppendOverloadMatchesToString) {
  const std::vector<Value> values = {
      Value{std::int64_t{42}},     Value{std::int64_t{-7}},
      Value{3.14159265},           Value{-0.0},
      Value{1.0e-9},               Value{123456789.0},
      Value{std::string("asm")},
  };
  std::string buf = "prefix:";
  for (const auto& v : values) {
    const std::string expect = to_string(v);
    std::string alone;
    to_string(v, alone);
    EXPECT_EQ(alone, expect);
    buf += alone;
  }
  EXPECT_TRUE(buf.rfind("prefix:", 0) == 0);
}

}  // namespace
}  // namespace harmony
