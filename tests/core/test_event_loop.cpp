// EventLoop::defer() cross-thread handoff tests. defer is the only way other
// threads (the acceptor, the fleet dispatcher's push path) inject work into
// a reactor, so it must survive heavy contention, defers enqueued from the
// loop thread itself, and a stop() racing in-flight defers. The suite runs
// under TSan in CI (see .github/workflows/ci.yml).

#include "core/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

using harmony::net::EventLoop;

namespace {

/// Poll until `fn` is true or ~5s elapse.
template <typename Fn>
bool eventually(Fn fn) {
  for (int i = 0; i < 1000; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

TEST(EventLoopDefer, RunsClosureOnLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  std::atomic<bool> ran{false};
  std::thread::id loop_tid;
  loop.defer([&] {
    loop_tid = std::this_thread::get_id();
    ran.store(true);
  });
  EXPECT_TRUE(eventually([&] { return ran.load(); }));
  EXPECT_EQ(loop_tid, runner.get_id());

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, ManyThreadsUnderContention) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // 8 producers x 500 defers each, all racing the loop's drain. Every
  // closure must run exactly once: the per-producer counters sum exactly.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::atomic<int> executed{0};
  std::atomic<long long> checksum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const long long token = static_cast<long long>(p) * kPerProducer + i;
        loop.defer([&, token] {
          checksum.fetch_add(token, std::memory_order_relaxed);
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : producers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_TRUE(eventually([&] { return executed.load() == kTotal; }));
  EXPECT_EQ(executed.load(), kTotal);
  EXPECT_EQ(checksum.load(),
            static_cast<long long>(kTotal) * (kTotal - 1) / 2);

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, DeferFromDeferredCallbackRunsNextIteration) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // A chain of defers, each enqueued from inside the previous one on the
  // loop thread itself — the re-entrant enqueue must not deadlock or drop.
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) + 1 < 100) loop.defer(chain);
  };
  loop.defer(chain);
  EXPECT_TRUE(eventually([&] { return depth.load() == 100; }));

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, StopWhileProducersAreDeferring) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // Producers keep deferring while the main thread stops the loop. No hang,
  // no crash; whatever ran, ran exactly once (monotone counter only grows).
  std::atomic<bool> quit{false};
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      while (!quit.load(std::memory_order_relaxed)) {
        loop.defer([&] { executed.fetch_add(1, std::memory_order_relaxed); });
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  loop.stop();
  runner.join();
  quit.store(true);
  for (auto& t : producers) t.join();
  EXPECT_GT(executed.load(), 0);
}

// Defer-queue residency: with observability on, every drained defer records
// its cross-thread handoff wait into the "net.loop.defer_wait_s" HDR
// histogram (nothing is recorded while observability is off).
TEST(EventLoopDefer, HdrDeferWaitRecordedWhenObsEnabled) {
  namespace obs = harmony::obs;
  auto& hist = obs::MetricsRegistry::global().hdr("net.loop.defer_wait_s");
  const bool was = obs::enabled();
  obs::set_enabled(false);

  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  std::atomic<int> ran{0};
  loop.defer([&] { ran.fetch_add(1); });
  EXPECT_TRUE(eventually([&] { return ran.load() == 1; }));
  const auto count_disabled = hist.count();

  obs::set_enabled(true);
  constexpr int kDefers = 32;
  for (int i = 0; i < kDefers; ++i) {
    loop.defer([&] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(eventually([&] { return ran.load() == 1 + kDefers; }));
  loop.stop();
  runner.join();
  obs::set_enabled(was);

  // Each enabled-mode defer recorded exactly one (nonnegative) wait sample;
  // the disabled-mode defer recorded none.
  EXPECT_GE(hist.count(), count_disabled + kDefers);
}

// ---- TimerWheel -----------------------------------------------------------
// The wheel drives idle-session reaping: coarse ticks, lazy re-bucketing for
// deadlines beyond one lap, and re-arm-from-callback (the "snooze" the server
// uses for sessions that were active since their deadline was set).

using harmony::net::TimerWheel;

TEST(TimerWheel, FiresAtTheScheduledTick) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule(7, 3);
  EXPECT_EQ(wheel.size(), 1u);
  for (int tick = 1; tick <= 5; ++tick) {
    wheel.advance([&](int key) { fired.push_back(key * 100 + tick); });
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 703);  // key 7, at tick 3, exactly once
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(1, 2);
  wheel.schedule(2, 2);
  wheel.cancel(1);
  for (int tick = 0; tick < 4; ++tick) {
    wheel.advance([&](int key) {
      EXPECT_EQ(key, 2);
      ++fired;
    });
  }
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, RearmMovesTheDeadline) {
  TimerWheel wheel;
  int fired_at = -1;
  wheel.schedule(5, 2);
  wheel.schedule(5, 6);  // re-arm before the first deadline: only 6 counts
  for (int tick = 1; tick <= 8; ++tick) {
    wheel.advance([&](int) { fired_at = tick; });
  }
  EXPECT_EQ(fired_at, 6);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, DelaysBeyondOneLapRebucket) {
  // 4 slots, delay 10: entry lands in bucket (10 % 4) and must survive two
  // earlier visits to that bucket before firing on the third lap.
  TimerWheel wheel(4);
  int fired_at = -1;
  wheel.schedule(9, 10);
  for (int tick = 1; tick <= 12; ++tick) {
    wheel.advance([&](int) {
      EXPECT_EQ(fired_at, -1);
      fired_at = tick;
    });
  }
  EXPECT_EQ(fired_at, 10);
}

TEST(TimerWheel, SnoozeFromCallbackReschedules) {
  TimerWheel wheel;
  std::vector<int> fire_ticks;
  wheel.schedule(3, 1);
  for (int tick = 1; tick <= 7; ++tick) {
    wheel.advance([&](int key) {
      fire_ticks.push_back(tick);
      if (fire_ticks.size() < 3) wheel.schedule(key, 2);  // snooze twice
    });
  }
  EXPECT_EQ(fire_ticks, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(wheel.size(), 0u);
}

// ---- EventLoop::set_tick ----------------------------------------------------

TEST(EventLoopTick, PeriodicTickFiresRepeatedlyOnLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());

  std::atomic<int> ticks{0};
  std::thread::id tick_tid;
  loop.set_tick(10, [&] {
    tick_tid = std::this_thread::get_id();
    ticks.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread runner([&] { loop.run(); });
  const std::thread::id runner_tid = runner.get_id();

  EXPECT_TRUE(eventually([&] { return ticks.load() >= 5; }));
  loop.stop();
  runner.join();
  EXPECT_EQ(tick_tid, runner_tid);
}

TEST(EventLoopTick, TickCoexistsWithDefers) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::atomic<int> ticks{0};
  loop.set_tick(5, [&] { ticks.fetch_add(1, std::memory_order_relaxed); });
  std::thread runner([&] { loop.run(); });

  std::atomic<int> deferred{0};
  for (int i = 0; i < 200; ++i) {
    loop.defer([&] { deferred.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_TRUE(
      eventually([&] { return deferred.load() == 200 && ticks.load() >= 3; }));
  loop.stop();
  runner.join();
}

}  // namespace
