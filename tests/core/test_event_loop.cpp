// EventLoop::defer() cross-thread handoff tests. defer is the only way other
// threads (the acceptor, the fleet dispatcher's push path) inject work into
// a reactor, so it must survive heavy contention, defers enqueued from the
// loop thread itself, and a stop() racing in-flight defers. The suite runs
// under TSan in CI (see .github/workflows/ci.yml).

#include "core/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

using harmony::net::EventLoop;

namespace {

/// Poll until `fn` is true or ~5s elapse.
template <typename Fn>
bool eventually(Fn fn) {
  for (int i = 0; i < 1000; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

TEST(EventLoopDefer, RunsClosureOnLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  std::atomic<bool> ran{false};
  std::thread::id loop_tid;
  loop.defer([&] {
    loop_tid = std::this_thread::get_id();
    ran.store(true);
  });
  EXPECT_TRUE(eventually([&] { return ran.load(); }));
  EXPECT_EQ(loop_tid, runner.get_id());

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, ManyThreadsUnderContention) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // 8 producers x 500 defers each, all racing the loop's drain. Every
  // closure must run exactly once: the per-producer counters sum exactly.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::atomic<int> executed{0};
  std::atomic<long long> checksum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const long long token = static_cast<long long>(p) * kPerProducer + i;
        loop.defer([&, token] {
          checksum.fetch_add(token, std::memory_order_relaxed);
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : producers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_TRUE(eventually([&] { return executed.load() == kTotal; }));
  EXPECT_EQ(executed.load(), kTotal);
  EXPECT_EQ(checksum.load(),
            static_cast<long long>(kTotal) * (kTotal - 1) / 2);

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, DeferFromDeferredCallbackRunsNextIteration) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // A chain of defers, each enqueued from inside the previous one on the
  // loop thread itself — the re-entrant enqueue must not deadlock or drop.
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) + 1 < 100) loop.defer(chain);
  };
  loop.defer(chain);
  EXPECT_TRUE(eventually([&] { return depth.load() == 100; }));

  loop.stop();
  runner.join();
}

TEST(EventLoopDefer, StopWhileProducersAreDeferring) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  // Producers keep deferring while the main thread stops the loop. No hang,
  // no crash; whatever ran, ran exactly once (monotone counter only grows).
  std::atomic<bool> quit{false};
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      while (!quit.load(std::memory_order_relaxed)) {
        loop.defer([&] { executed.fetch_add(1, std::memory_order_relaxed); });
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  loop.stop();
  runner.join();
  quit.store(true);
  for (auto& t : producers) t.join();
  EXPECT_GT(executed.load(), 0);
}

// Defer-queue residency: with observability on, every drained defer records
// its cross-thread handoff wait into the "net.loop.defer_wait_s" HDR
// histogram (nothing is recorded while observability is off).
TEST(EventLoopDefer, HdrDeferWaitRecordedWhenObsEnabled) {
  namespace obs = harmony::obs;
  auto& hist = obs::MetricsRegistry::global().hdr("net.loop.defer_wait_s");
  const bool was = obs::enabled();
  obs::set_enabled(false);

  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread runner([&] { loop.run(); });

  std::atomic<int> ran{0};
  loop.defer([&] { ran.fetch_add(1); });
  EXPECT_TRUE(eventually([&] { return ran.load() == 1; }));
  const auto count_disabled = hist.count();

  obs::set_enabled(true);
  constexpr int kDefers = 32;
  for (int i = 0; i < kDefers; ++i) {
    loop.defer([&] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(eventually([&] { return ran.load() == 1 + kDefers; }));
  loop.stop();
  runner.join();
  obs::set_enabled(was);

  // Each enabled-mode defer recorded exactly one (nonnegative) wait sample;
  // the disabled-mode defer recorded none.
  EXPECT_GE(hist.count(), count_disabled + kDefers);
}

}  // namespace
