/// \file test_introspection.cpp
/// Live tuning-server introspection: the STATUS / METRICS / LOG protocol
/// verbs, the TuningClient admin helpers that wrap them, and the
/// max-line-bytes overload guard. The METRICS and STATUS tests exercise the
/// PR's acceptance criteria against a live server over a raw socket: the
/// Prometheus exposition must carry at least one counter and one histogram,
/// and STATUS must list every active session with its current best value.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/client.hpp"
#include "core/net.hpp"
#include "core/server.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using harmony::ServerOptions;
using harmony::TuningClient;
using harmony::TuningServer;
namespace obs = harmony::obs;

/// Restores the process-wide observability flag on scope exit.
class ObsEnabledGuard {
 public:
  explicit ObsEnabledGuard(bool on) : was_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ObsEnabledGuard() { obs::set_enabled(was_); }

 private:
  bool was_;
};

class IntrospectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start());
    ASSERT_GT(server_.port(), 0);
  }

  void TearDown() override { server_.stop(); }

  /// Drive a short quadratic tuning loop so the server has live search
  /// state (strategy, phase, incumbent) and metric samples to expose.
  void run_some_tuning(TuningClient& client, int budget = 12) {
    ASSERT_TRUE(client.connect(server_.port(), "quad"));
    ASSERT_TRUE(client.add_int("x", 0, 200));
    ASSERT_TRUE(client.start(budget));
    for (int i = 0; i < budget; ++i) {
      const auto config = client.fetch();
      ASSERT_TRUE(config.has_value());
      const auto x = std::get<std::int64_t>(config->values[0]);
      ASSERT_TRUE(client.report(static_cast<double>((x - 60) * (x - 60))));
    }
  }

  TuningServer server_;
};

// Acceptance criterion: raw `METRICS` against a live server returns a valid
// Prometheus exposition containing at least one counter and one histogram,
// terminated by the "# EOF" framing line (itself a legal exposition comment,
// so `echo METRICS | nc` output is scrape-ready as-is).
TEST_F(IntrospectionFixture, MetricsVerbServesPrometheusExposition) {
  const ObsEnabledGuard obs_on(true);
  TuningClient worker;
  run_some_tuning(worker);

  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("METRICS"));

  std::vector<std::string> lines;
  for (;;) {
    const auto line = reader.read_line();
    ASSERT_TRUE(line.has_value()) << "connection dropped mid-exposition";
    if (*line == "# EOF") break;
    lines.push_back(*line);
    ASSERT_LT(lines.size(), 100000u) << "runaway exposition";
  }
  ASSERT_FALSE(lines.empty());

  bool counter = false;
  bool histogram = false;
  for (const auto& line : lines) {
    // Valid exposition: every line is a comment or an ah_-prefixed sample.
    ASSERT_TRUE(line.rfind("#", 0) == 0 || line.rfind("ah_", 0) == 0) << line;
    if (line.find("# TYPE ") == 0 && line.find(" counter") != std::string::npos) {
      counter = true;
    }
    if (line.find("_bucket{le=\"") != std::string::npos) histogram = true;
  }
  EXPECT_TRUE(counter) << "no counter in exposition";
  EXPECT_TRUE(histogram) << "no histogram bucket in exposition";

  worker.bye();
}

// Acceptance criterion: STATUS returns parseable JSON listing every active
// session with its current best value.
TEST_F(IntrospectionFixture, StatusVerbListsActiveSessionsWithBest) {
  TuningClient worker;
  run_some_tuning(worker);

  TuningClient admin;
  ASSERT_TRUE(admin.connect(server_.port(), "harmony-top"));
  const auto json = admin.status_json();
  ASSERT_TRUE(json.has_value());
  const auto doc = obs::json_parse(*json);
  ASSERT_TRUE(doc.has_value()) << *json;
  ASSERT_TRUE(doc->is_object());

  const auto* sessions = doc->find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_TRUE(sessions->is_array());
  // Both live connections (worker + admin) are on the board.
  EXPECT_GE(sessions->as_array().size(), 2u);

  bool found_worker = false;
  for (const auto& s : sessions->as_array()) {
    EXPECT_EQ(s.string_or("id", "").rfind("server/", 0), 0u);
    if (s.string_or("app", "") != "quad") continue;
    found_worker = true;
    EXPECT_EQ(s.string_or("strategy", ""), "nelder-mead");
    EXPECT_GE(s.number_or("iterations", -1), 12.0);
    const auto* best = s.find("best_value");
    ASSERT_NE(best, nullptr);
    ASSERT_TRUE(best->is_number());
    EXPECT_GE(best->as_number(), 0.0);  // quadratic objective is >= 0
    EXPECT_FALSE(s.string_or("best_config", "").empty());
  }
  EXPECT_TRUE(found_worker) << *json;

  worker.bye();
  admin.bye();
}

TEST_F(IntrospectionFixture, StatusDropsSessionAfterDisconnect) {
  {
    TuningClient worker;
    run_some_tuning(worker, 4);
    worker.bye();
  }
  TuningClient admin;
  ASSERT_TRUE(admin.connect(server_.port(), "admin"));
  // The worker's slot unpublishes when its connection thread winds down;
  // poll briefly to avoid a race with the server's session teardown.
  bool gone = false;
  for (int attempt = 0; attempt < 100 && !gone; ++attempt) {
    const auto json = admin.status_json();
    ASSERT_TRUE(json.has_value());
    const auto doc = obs::json_parse(*json);
    ASSERT_TRUE(doc.has_value());
    const auto* sessions = doc->find("sessions");
    ASSERT_NE(sessions, nullptr);
    gone = true;
    for (const auto& s : sessions->as_array()) {
      if (s.string_or("app", "") == "quad") gone = false;
    }
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone);
  admin.bye();
}

TEST_F(IntrospectionFixture, LogVerbFramesJsonlEvents) {
  const ObsEnabledGuard obs_on(true);
  TuningClient worker;
  run_some_tuning(worker, 4);

  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("LOG tail 5"));
  const auto header = reader.read_line();
  ASSERT_TRUE(header.has_value());
  ASSERT_EQ(header->rfind("LOG ", 0), 0u) << *header;
  const auto count = std::stoul(header->substr(4));
  ASSERT_GE(count, 1u);
  ASSERT_LE(count, 5u);
  std::uint64_t prev_seq = 0;
  for (unsigned long i = 0; i < count; ++i) {
    const auto line = reader.read_line();
    ASSERT_TRUE(line.has_value());
    const auto doc = obs::json_parse(*line);
    ASSERT_TRUE(doc.has_value()) << *line;
    EXPECT_FALSE(doc->string_or("severity", "").empty());
    EXPECT_FALSE(doc->string_or("component", "").empty());
    const auto seq = static_cast<std::uint64_t>(doc->number_or("seq", 0));
    EXPECT_GT(seq, prev_seq);  // oldest first, strictly ordered
    prev_seq = seq;
  }
  worker.bye();
}

TEST_F(IntrospectionFixture, LogVerbRejectsBadCount) {
  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("LOG tail many"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u);
}

TEST_F(IntrospectionFixture, ClientHelpersWrapIntrospectionVerbs) {
  const ObsEnabledGuard obs_on(true);
  TuningClient worker;
  run_some_tuning(worker, 4);

  TuningClient admin;
  ASSERT_TRUE(admin.connect(server_.port(), "admin"));
  const auto metrics = admin.metrics_text();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("ah_"), std::string::npos);
  // The framing terminator is protocol-level; the helper strips it.
  EXPECT_EQ(metrics->find("# EOF"), std::string::npos);

  const auto events = admin.log_tail(3);
  ASSERT_TRUE(events.has_value());
  EXPECT_LE(events->size(), 3u);
  for (const auto& line : *events) {
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
  }
  worker.bye();
  admin.bye();
}

TEST(IntrospectionLimits, OversizedLineDisconnectsWithError) {
  ServerOptions opts;
  opts.max_line_bytes = 256;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  harmony::net::Socket sock = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO flood"));
  ASSERT_TRUE(reader.read_line().has_value());

  const std::string flood(4096, 'x');
  ASSERT_TRUE(sock.send_line(flood));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ERR line too long");
  // Server hangs up after the error: the next read sees EOF.
  EXPECT_FALSE(reader.read_line().has_value());
  server.stop();
}

TEST(IntrospectionLimits, NormalSessionUnaffectedByLimit) {
  ServerOptions opts;
  opts.max_line_bytes = 4096;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  TuningClient client;
  ASSERT_TRUE(client.connect(server.port(), "app"));
  ASSERT_TRUE(client.add_int("x", 0, 10));
  ASSERT_TRUE(client.start(3));
  while (auto config = client.fetch()) {
    ASSERT_TRUE(client.report(1.0));
  }
  client.bye();
  server.stop();
}

}  // namespace
