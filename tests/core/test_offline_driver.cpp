#include "core/offline_driver.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/nelder_mead.hpp"
#include "core/random_search.hpp"

namespace {

using harmony::Config;
using harmony::Exhaustive;
using harmony::NelderMead;
using harmony::OfflineDriver;
using harmony::OfflineOptions;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::RandomSearch;
using harmony::ShortRunResult;

ParamSpace line(int n) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, n - 1));
  return s;
}

ShortRunResult run_of(double measured, double warmup = 0.0) {
  ShortRunResult r;
  r.measured_s = measured;
  r.warmup_s = warmup;
  return r;
}

TEST(OfflineDriver, OneShortRunPerIteration) {
  const auto s = line(50);
  OfflineOptions opts;
  opts.max_runs = 12;
  OfflineDriver driver(s, opts);
  RandomSearch rs(s, 1000, 2);
  int launches = 0;
  const auto result = driver.tune(rs, [&](const Config&, int steps) {
    EXPECT_EQ(steps, opts.short_run_steps);
    ++launches;
    return run_of(1.0);
  });
  EXPECT_EQ(result.runs, 12);
  EXPECT_EQ(launches, 12);
}

TEST(OfflineDriver, AccountsAllTuningCosts) {
  // Section III: "take all costs of parameter changes (including
  // applications needed to be re-run and their warm up time)".
  const auto s = line(100);
  OfflineOptions opts;
  opts.max_runs = 5;
  opts.restart_overhead_s = 2.0;
  opts.use_cache = false;
  OfflineDriver driver(s, opts);
  RandomSearch rs(s, 100, 3);
  const auto result = driver.tune(rs, [&](const Config&, int) {
    return run_of(/*measured=*/3.0, /*warmup=*/1.0);
  });
  EXPECT_DOUBLE_EQ(result.total_tuning_cost_s, 5 * (2.0 + 1.0 + 3.0));
}

TEST(OfflineDriver, CacheSkipsRepeatedConfigs) {
  const auto s = line(3);
  OfflineOptions opts;
  opts.max_runs = 50;
  OfflineDriver driver(s, opts);
  RandomSearch rs(s, 50, 4);
  int launches = 0;
  const auto result = driver.tune(rs, [&](const Config&, int) {
    ++launches;
    return run_of(1.0);
  });
  EXPECT_LE(launches, 3);
  EXPECT_EQ(result.runs, launches);
}

TEST(OfflineDriver, FindsMinimumViaNelderMead) {
  const auto s = line(400);
  OfflineOptions opts;
  opts.max_runs = 60;
  OfflineDriver driver(s, opts);
  harmony::NelderMeadOptions nopts;
  nopts.max_restarts = 2;
  NelderMead nm(s, nopts);
  const auto result = driver.tune(nm, [](const Config& c, int) {
    const auto x = std::get<std::int64_t>(c.values[0]);
    return run_of(10.0 + 0.01 * static_cast<double>((x - 250) * (x - 250)));
  });
  ASSERT_TRUE(result.best.has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(result.best->values[0])),
              250.0, 10.0);
  EXPECT_NEAR(result.best_measured_s, 10.0, 0.5);
}

TEST(OfflineDriver, FailedRunsAreInfeasible) {
  const auto s = line(10);
  OfflineOptions opts;
  opts.max_runs = 10;
  OfflineDriver driver(s, opts);
  Exhaustive ex(s);
  const auto result = driver.tune(ex, [](const Config& c, int) {
    const auto x = std::get<std::int64_t>(c.values[0]);
    ShortRunResult r;
    if (x % 2 == 0) {
      r.ok = false;  // even configurations crash
    } else {
      r.measured_s = static_cast<double>(x);
    }
    return r;
  });
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(std::get<std::int64_t>(result.best->values[0]), 1);
}

TEST(OfflineDriver, HistoryRecordsRuns) {
  const auto s = line(6);
  OfflineDriver driver(s);
  Exhaustive ex(s);
  (void)driver.tune(ex, [](const Config&, int) { return run_of(1.0); });
  EXPECT_EQ(driver.history().iterations(), 6);
}

TEST(OfflineDriver, BadOptionsThrow) {
  const auto s = line(4);
  OfflineOptions opts;
  opts.max_runs = 0;
  EXPECT_THROW(OfflineDriver(s, opts), std::invalid_argument);
  opts.max_runs = 1;
  opts.short_run_steps = 0;
  EXPECT_THROW(OfflineDriver(s, opts), std::invalid_argument);
  opts.short_run_steps = 1;
  opts.restart_overhead_s = -1;
  EXPECT_THROW(OfflineDriver(s, opts), std::invalid_argument);
}

TEST(OfflineDriver, NullRunFunctionThrows) {
  const auto s = line(4);
  OfflineDriver driver(s);
  Exhaustive ex(s);
  EXPECT_THROW((void)driver.tune(ex, nullptr), std::invalid_argument);
}

TEST(OfflineDriver, ShortRunStepsConfigurable) {
  // Benchmarking runs in the paper are 10 time steps; production tuning uses
  // longer runs — the driver must pass the configured length through.
  const auto s = line(4);
  OfflineOptions opts;
  opts.short_run_steps = 1000;
  opts.max_runs = 2;
  OfflineDriver driver(s, opts);
  Exhaustive ex(s);
  (void)driver.tune(ex, [](const Config&, int steps) {
    EXPECT_EQ(steps, 1000);
    return run_of(1.0);
  });
}

}  // namespace
