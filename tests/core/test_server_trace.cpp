// End-to-end request tracing through the tuning server: clients append wire
// trace tokens (" T=<trace>-<span>") to sampled requests, the server records
// a server.handle root span plus server.tell / server.ask stage children
// into the ServerOptions tracer, and untraced requests leave no spans at
// all. Also covers the slow-request SLO path: requests over
// ServerOptions::slow_request_us land in the global EventLog and bump the
// StatusRegistry slow_requests counter. The suite runs under TSan in CI
// (name-matched via TraceContext / SlowRequest).

#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/net.hpp"
#include "core/server.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace {

using harmony::ServerOptions;
using harmony::ServerThreading;
using harmony::TuningServer;
namespace obs = harmony::obs;

std::string trace_token(std::uint64_t trace_id, std::uint64_t span_id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), " T=%016" PRIx64 "-%016" PRIx64, trace_id,
                span_id);
  return buf;
}

/// One pipelined session mixing traced and untraced request verbs. Every
/// odd-numbered evaluation carries a token minted from `trace_base`; the
/// root-span count and parent ids are validated by the caller against the
/// tracer. Returns the number of tokens sent (== expected root spans).
int run_traced_session(int port, std::uint64_t trace_base, int evals) {
  harmony::net::Socket sock = harmony::net::connect_loopback(port);
  if (!sock.valid()) {
    ADD_FAILURE() << "connect failed";
    return -1;
  }
  std::string script = "HELLO traced\nPARAM INT x 0 200 1\nSTART " +
                       std::to_string(evals + 4) + "\nFETCH\n";
  int replies = 4;  // OK OK OK CONFIG
  int tokens = 0;
  for (int i = 0; i < evals; ++i) {
    script += "REPORT+FETCH " + std::to_string(50.0 + i);
    if (i % 2 == 1) {
      script += trace_token(trace_base + static_cast<std::uint64_t>(i),
                            /*span_id=*/0x1000 + static_cast<std::uint64_t>(i));
      ++tokens;
    }
    script += "\n";
    ++replies;  // CONFIG
  }
  script += "BYE\n";
  ++replies;  // OK
  if (!sock.send_all(script)) {
    ADD_FAILURE() << "send failed";
    return -1;
  }
  harmony::net::LineReader reader(sock);
  std::string line;
  for (int i = 0; i < replies; ++i) {
    if (!reader.read_line(line)) {
      ADD_FAILURE() << "connection closed at reply " << i;
      return -1;
    }
    if (line.rfind("ERR", 0) == 0) {
      ADD_FAILURE() << "unexpected ERR: " << line;
      return -1;
    }
  }
  return tokens;
}

TEST(TraceContextPlumbing, PipelinedClientsProduceCompleteSpanChains) {
  obs::SearchTracer tracer;
  ServerOptions opts;
  opts.threading = ServerThreading::kEventLoop;
  opts.tracer = &tracer;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 64;
  constexpr int kEvals = 8;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  std::atomic<int> tokens_sent{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // Distinct per-client trace-id range, so chains never collide.
      const std::uint64_t base = 0x100000ull * (c + 1);
      const int sent = run_traced_session(server.port(), base, kEvals);
      if (sent > 0) tokens_sent.fetch_add(sent);
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  ASSERT_EQ(tokens_sent.load(), kClients * (kEvals / 2));
  const auto spans = tracer.spans();

  // Index: root span per trace id, children grouped by parent span id.
  std::map<std::uint64_t, const obs::SpanEvent*> roots;
  std::map<std::uint64_t, std::vector<const obs::SpanEvent*>> children;
  for (const auto& s : spans) {
    if (s.name == "server.handle") {
      EXPECT_EQ(roots.count(s.trace_id), 0u) << "duplicate root";
      roots[s.trace_id] = &s;
    } else {
      children[s.parent_span].push_back(&s);
    }
  }
  // Every token produced exactly one root span whose parent is the client's
  // span id from the wire token, with its stage children nested inside.
  ASSERT_EQ(roots.size(), static_cast<std::size_t>(tokens_sent.load()));
  for (const auto& [trace_id, root] : roots) {
    EXPECT_EQ(root->parent_span, 0x1000 + (trace_id & 0xffff))
        << "root's parent must be the client-side span id";
    EXPECT_EQ(root->detail, "REPORT+FETCH");
    ASSERT_NE(root->span_id, 0u);
    const auto it = children.find(root->span_id);
    ASSERT_NE(it, children.end()) << "root has no stage children";
    bool saw_tell = false;
    bool saw_ask = false;
    for (const auto* child : it->second) {
      EXPECT_EQ(child->trace_id, trace_id);
      // Children sit inside the root's bounds. The read ordering in
      // finish_request / record_stage_span guarantees containment under any
      // scheduler interleaving; 0.5 us covers double rounding only.
      EXPECT_GE(child->t_start_us, root->t_start_us - 0.5);
      EXPECT_LE(child->t_end_us, root->t_end_us + 0.5);
      saw_tell = saw_tell || child->name == "server.tell";
      saw_ask = saw_ask || child->name == "server.ask";
    }
    EXPECT_TRUE(saw_tell) << "REPORT+FETCH must record a server.tell stage";
    EXPECT_TRUE(saw_ask) << "REPORT+FETCH must record a server.ask stage";
  }
}

TEST(TraceContextPlumbing, UntracedRequestsRecordNoSpans) {
  obs::SearchTracer tracer;
  ServerOptions opts;
  opts.tracer = &tracer;
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  // A full session without a single trace token: the span machinery must
  // never fire, even with a tracer installed.
  const int sent = run_traced_session(server.port(), /*trace_base=*/0,
                                      /*evals=*/1);  // i=0 only: no token
  server.stop();
  ASSERT_EQ(sent, 0);
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(SlowRequestLog, OverBudgetRequestsLandInEventLogAndStatus) {
  const auto slow_before = obs::StatusRegistry::global()
                               .latency()
                               .slow_requests.load();
  ServerOptions opts;
  opts.slow_request_us = 1;  // everything is over budget
  TuningServer server(opts);
  ASSERT_TRUE(server.start());

  harmony::net::Socket sock = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  ASSERT_TRUE(sock.send_all(std::string_view(
      "HELLO slo\nPARAM INT x 0 100 1\nSTART 8\nFETCH\nREPORT+FETCH 1\nBYE\n")));
  harmony::net::LineReader reader(sock);
  std::string line;
  int replies = 0;
  while (reader.read_line(line)) {
    EXPECT_NE(line.rfind("ERR", 0), 0u) << line;
    ++replies;
  }
  EXPECT_EQ(replies, 6);
  server.stop();

  // FETCH and REPORT+FETCH both breached the 1 us SLO.
  const auto slow_after =
      obs::StatusRegistry::global().latency().slow_requests.load();
  EXPECT_GE(slow_after, slow_before + 2);

  // The breaches were logged with their verb, timing, and trace ids.
  bool found = false;
  for (const auto& e : obs::EventLog::global().tail(64)) {
    if (e.component == "server.slow" &&
        e.message.find("REPORT+FETCH") != std::string::npos) {
      found = true;
      EXPECT_NE(e.message.find("trace="), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no server.slow record for REPORT+FETCH in LOG tail";
}

TEST(SlowRequestLog, UnderBudgetRequestsAreNotLogged) {
  const auto slow_before = obs::StatusRegistry::global()
                               .latency()
                               .slow_requests.load();
  ServerOptions opts;
  opts.slow_request_us = 60'000'000;  // one minute: nothing breaches
  TuningServer server(opts);
  ASSERT_TRUE(server.start());
  harmony::net::Socket sock = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  ASSERT_TRUE(sock.send_all(std::string_view(
      "HELLO fast\nPARAM INT x 0 100 1\nSTART 8\nFETCH\nREPORT 1\nBYE\n")));
  harmony::net::LineReader reader(sock);
  for (std::string line; reader.read_line(line);) {
  }
  server.stop();
  EXPECT_EQ(obs::StatusRegistry::global().latency().slow_requests.load(),
            slow_before);
}

/// The per-session latency quantiles reach the STATUS wire verb: a session
/// that served requests publishes p50/p95/p99, and the top-level latency
/// block counts every request verb seen by the process.
TEST(TraceContextPlumbing, StatusCarriesLatencyQuantiles) {
  TuningServer server;
  ASSERT_TRUE(server.start());
  harmony::net::Socket sock = harmony::net::connect_loopback(server.port());
  ASSERT_TRUE(sock.valid());
  std::string script = "HELLO lat\nPARAM INT x 0 100 1\nSTART 40\nFETCH\n";
  for (int i = 0; i < 8; ++i) {
    script += "REPORT+FETCH " + std::to_string(10.0 + i) + "\n";
  }
  script += "STATUS\nBYE\n";
  ASSERT_TRUE(sock.send_all(script));
  harmony::net::LineReader reader(sock);
  std::string json;
  for (std::string line; reader.read_line(line);) {
    if (!line.empty() && line.front() == '{') json = line;
  }
  server.stop();
  ASSERT_FALSE(json.empty());
  const auto doc = obs::json_parse(json);
  ASSERT_TRUE(doc.has_value());
  const auto* sessions = doc->find("sessions");
  ASSERT_TRUE(sessions != nullptr && sessions->is_array());
  ASSERT_FALSE(sessions->as_array().empty());
  const auto& s = sessions->as_array()[0];
  // The session's quantiles publish on the first request, so 9 requests in
  // they are nonzero and ordered.
  EXPECT_GT(s.number_or("p50_us", 0), 0.0);
  EXPECT_GE(s.number_or("p95_us", 0), s.number_or("p50_us", 0));
  EXPECT_GE(s.number_or("p99_us", 0), s.number_or("p95_us", 0));
  const auto* lat = doc->find("latency");
  ASSERT_TRUE(lat != nullptr && lat->is_object());
  EXPECT_GE(lat->number_or("count", 0), 9.0);  // FETCH + 8 REPORT+FETCH
  EXPECT_GT(lat->number_or("p99_us", 0), 0.0);
}

}  // namespace
