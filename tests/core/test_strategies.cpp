#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/random_search.hpp"
#include "core/simulated_annealing.hpp"
#include "core/systematic_sampler.hpp"

namespace {

using harmony::Config;
using harmony::CoordinateDescent;
using harmony::EvaluationResult;
using harmony::Exhaustive;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::RandomSearch;
using harmony::SearchStrategy;
using harmony::SimulatedAnnealing;
using harmony::SystematicSampler;

EvaluationResult eval_of(double v) {
  EvaluationResult r;
  r.objective = v;
  return r;
}

template <typename Fn>
int drive(SearchStrategy& strat, const Fn& fn, int max_steps = 100000) {
  int steps = 0;
  while (steps < max_steps) {
    auto p = strat.propose();
    if (!p) break;
    strat.report(*p, eval_of(fn(*p)));
    ++steps;
  }
  return steps;
}

ParamSpace grid2d(int n) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, n - 1));
  s.add(Parameter::Integer("b", 0, n - 1));
  return s;
}

double bowl(const Config& c) {
  const double a = static_cast<double>(std::get<std::int64_t>(c.values[0]));
  const double b = static_cast<double>(std::get<std::int64_t>(c.values[1]));
  return (a - 3) * (a - 3) + (b - 5) * (b - 5);
}

// ---------- RandomSearch ----------

TEST(RandomSearch, RespectsBudget) {
  const auto s = grid2d(10);
  RandomSearch rs(s, 25);
  EXPECT_EQ(drive(rs, bowl), 25);
  EXPECT_TRUE(rs.converged());
  EXPECT_FALSE(rs.propose().has_value());
}

TEST(RandomSearch, TracksBest) {
  const auto s = grid2d(10);
  RandomSearch rs(s, 300, 7);
  drive(rs, bowl);
  ASSERT_TRUE(rs.best().has_value());
  EXPECT_LE(rs.best_objective(), 2.0);  // 300 draws on a 100-point grid
}

TEST(RandomSearch, DeterministicPerSeed) {
  const auto s = grid2d(10);
  RandomSearch a(s, 10, 42);
  RandomSearch b(s, 10, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*a.propose(), *b.propose());
    a.report(s.default_config(), eval_of(1));
    b.report(s.default_config(), eval_of(1));
  }
}

TEST(RandomSearch, BadBudgetThrows) {
  const auto s = grid2d(4);
  EXPECT_THROW(RandomSearch(s, 0), std::invalid_argument);
}

TEST(RandomSearch, IgnoresInvalidResults) {
  const auto s = grid2d(10);
  RandomSearch rs(s, 50, 3);
  while (auto p = rs.propose()) {
    rs.report(*p, EvaluationResult::infeasible());
  }
  EXPECT_FALSE(rs.best().has_value());
}

// ---------- SystematicSampler ----------

TEST(SystematicSampler, PlanSizeAndCount) {
  const auto s = grid2d(10);
  SystematicSampler ss(s, 4);
  EXPECT_EQ(ss.plan_size(), 16u);
  EXPECT_EQ(drive(ss, bowl), 16);
  EXPECT_TRUE(ss.converged());
}

TEST(SystematicSampler, CoversEvenlySpacedValues) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 9));
  SystematicSampler ss(s, 4);
  std::set<std::int64_t> seen;
  while (auto p = ss.propose()) {
    seen.insert(std::get<std::int64_t>(p->values[0]));
    ss.report(*p, eval_of(0));
  }
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 3, 6, 9}));
}

TEST(SystematicSampler, ClampsToLatticeSize) {
  ParamSpace s;
  s.add(Parameter::Enum("e", {"x", "y"}));
  SystematicSampler ss(s, 10);  // only 2 distinct values exist
  EXPECT_EQ(ss.plan_size(), 2u);
}

TEST(SystematicSampler, PerDimensionCounts) {
  const auto s = grid2d(10);
  SystematicSampler ss(s, std::vector<int>{2, 5});
  EXPECT_EQ(ss.plan_size(), 10u);
}

TEST(SystematicSampler, MismatchedDimsThrow) {
  const auto s = grid2d(10);
  EXPECT_THROW(SystematicSampler(s, std::vector<int>{2}), std::invalid_argument);
  EXPECT_THROW(SystematicSampler(s, std::vector<int>{2, 0}), std::invalid_argument);
}

TEST(SystematicSampler, EnumeratesDistinctConfigs) {
  const auto s = grid2d(8);
  SystematicSampler ss(s, 3);
  std::set<std::string> keys;
  while (auto p = ss.propose()) {
    keys.insert(s.key(*p));
    ss.report(*p, eval_of(0));
  }
  EXPECT_EQ(keys.size(), 9u);
}

TEST(SystematicSampler, FindsGoodPointOnSmoothSurface) {
  const auto s = grid2d(20);
  SystematicSampler ss(s, 10);
  drive(ss, bowl);
  EXPECT_LE(ss.best_objective(), 8.0);
}

// ---------- Exhaustive ----------

TEST(Exhaustive, VisitsEveryPointExactlyOnce) {
  const auto s = grid2d(6);
  Exhaustive ex(s);
  EXPECT_EQ(ex.plan_size(), 36u);
  std::set<std::string> keys;
  while (auto p = ex.propose()) {
    keys.insert(s.key(*p));
    ex.report(*p, eval_of(bowl(*p)));
  }
  EXPECT_EQ(keys.size(), 36u);
  EXPECT_TRUE(ex.converged());
}

TEST(Exhaustive, FindsGlobalMinimum) {
  const auto s = grid2d(12);
  Exhaustive ex(s);
  drive(ex, bowl);
  EXPECT_DOUBLE_EQ(ex.best_objective(), 0.0);
  EXPECT_EQ(std::get<std::int64_t>(ex.best()->values[0]), 3);
  EXPECT_EQ(std::get<std::int64_t>(ex.best()->values[1]), 5);
}

TEST(Exhaustive, RejectsContinuousSpace) {
  ParamSpace s;
  s.add(Parameter::Real("x", 0, 1));
  EXPECT_THROW(Exhaustive ex(s), std::invalid_argument);
}

TEST(Exhaustive, RejectsOversizedSpace) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 999));
  s.add(Parameter::Integer("b", 0, 999));
  s.add(Parameter::Integer("c", 0, 999));
  EXPECT_THROW(Exhaustive ex(s, 1000000), std::invalid_argument);
}

// ---------- CoordinateDescent ----------

TEST(CoordinateDescent, DescendsSeparableFunction) {
  const auto s = grid2d(30);
  CoordinateDescent cd(s);
  drive(cd, bowl);
  EXPECT_DOUBLE_EQ(cd.best_objective(), 0.0);
}

TEST(CoordinateDescent, StopsWhenNoImprovement) {
  const auto s = grid2d(10);
  CoordinateDescent cd(s);
  const int steps = drive(cd, [](const Config&) { return 1.0; });
  EXPECT_TRUE(cd.converged());
  // Initial + one sweep of <= 4 neighbors.
  EXPECT_LE(steps, 6);
}

TEST(CoordinateDescent, HonorsInitialConfig) {
  const auto s = grid2d(30);
  Config init = s.default_config();
  s.set(init, "a", std::int64_t{3});
  s.set(init, "b", std::int64_t{5});
  CoordinateDescent cd(s, init);
  drive(cd, bowl);
  EXPECT_DOUBLE_EQ(cd.best_objective(), 0.0);
}

TEST(CoordinateDescent, FindsBestEnumValue) {
  ParamSpace s;
  s.add(Parameter::Enum("mode", {"slow", "medium", "fast"}));
  CoordinateDescent cd(s);
  drive(cd, [](const Config& c) {
    const auto& m = std::get<std::string>(c.values[0]);
    return m == "fast" ? 1.0 : m == "medium" ? 2.0 : 3.0;
  });
  EXPECT_EQ(std::get<std::string>(cd.best()->values[0]), "fast");
}

TEST(CoordinateDescent, LineSamplesCrossBadIntermediateChoice) {
  // A 3-choice enum whose middle value is the worst traps the +-1 neighbor
  // walk; a per-coordinate value sweep must escape it.
  ParamSpace s;
  s.add(Parameter::Enum("mode", {"ok", "terrible", "best"}));
  const auto cost = [](const Config& c) {
    const auto& m = std::get<std::string>(c.values[0]);
    return m == "best" ? 1.0 : m == "ok" ? 2.0 : 9.0;
  };
  Config start = s.default_config();
  s.set(start, "mode", std::string("ok"));
  CoordinateDescent trapped(s, start, 10, /*line_samples=*/0);
  drive(trapped, cost);
  EXPECT_EQ(std::get<std::string>(trapped.best()->values[0]), "ok");
  CoordinateDescent sweeping(s, start, 10, /*line_samples=*/3);
  drive(sweeping, cost);
  EXPECT_EQ(std::get<std::string>(sweeping.best()->values[0]), "best");
}

TEST(CoordinateDescent, LineSamplesJumpAcrossIntegerRange) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 1000));
  Config start = s.default_config();
  s.set(start, "x", std::int64_t{0});
  // Narrow optimum far from the start: +-1 moves see no gradient.
  const auto cost = [](const Config& c) {
    const auto x = std::get<std::int64_t>(c.values[0]);
    return x == 1000 ? 0.0 : 1.0;
  };
  CoordinateDescent cd(s, start, 10, /*line_samples=*/11);
  drive(cd, cost);
  EXPECT_DOUBLE_EQ(cd.best_objective(), 0.0);  // 1000 is on the sample grid
}

TEST(CoordinateDescent, NegativeLineSamplesThrow) {
  const auto s = grid2d(4);
  EXPECT_THROW(CoordinateDescent(s, std::nullopt, 10, -1), std::invalid_argument);
}

TEST(CoordinateDescent, BadSweepCountThrows) {
  const auto s = grid2d(4);
  EXPECT_THROW(CoordinateDescent(s, std::nullopt, 0), std::invalid_argument);
}

TEST(CoordinateDescent, ReportWithoutProposeThrows) {
  const auto s = grid2d(4);
  CoordinateDescent cd(s);
  EXPECT_THROW(cd.report(s.default_config(), eval_of(1)), std::logic_error);
}

// ---------- SimulatedAnnealing ----------

TEST(SimulatedAnnealing, RespectsBudget) {
  const auto s = grid2d(10);
  harmony::AnnealingOptions opts;
  opts.max_evaluations = 40;
  SimulatedAnnealing sa(s, opts);
  EXPECT_EQ(drive(sa, bowl), 40);
  EXPECT_TRUE(sa.converged());
}

TEST(SimulatedAnnealing, ImprovesOverInitial) {
  const auto s = grid2d(50);
  harmony::AnnealingOptions opts;
  opts.max_evaluations = 400;
  SimulatedAnnealing sa(s, opts);
  double first = -1;
  int step = 0;
  while (auto p = sa.propose()) {
    const double v = bowl(*p);
    if (step++ == 0) first = v;
    sa.report(*p, eval_of(v));
  }
  EXPECT_LT(sa.best_objective(), first);
  EXPECT_LE(sa.best_objective(), 16.0);
}

TEST(SimulatedAnnealing, TemperatureCools) {
  const auto s = grid2d(10);
  harmony::AnnealingOptions opts;
  opts.max_evaluations = 100;
  SimulatedAnnealing sa(s, opts);
  drive(sa, bowl, 20);
  const double mid = sa.temperature();
  drive(sa, bowl, 40);
  EXPECT_LT(sa.temperature(), mid);
}

TEST(SimulatedAnnealing, BadBudgetThrows) {
  const auto s = grid2d(4);
  harmony::AnnealingOptions opts;
  opts.max_evaluations = 0;
  EXPECT_THROW(SimulatedAnnealing(s, opts), std::invalid_argument);
}

// ---------- cross-strategy property ----------

// Every strategy must locate a near-optimal point of the same convex
// discrete bowl within its budget.
class AnyStrategyFindsBowl : public ::testing::TestWithParam<std::string> {};

TEST_P(AnyStrategyFindsBowl, WithinTolerance) {
  const auto s = grid2d(16);
  std::unique_ptr<SearchStrategy> strat;
  const auto& kind = GetParam();
  if (kind == "random") {
    strat = std::make_unique<RandomSearch>(s, 200, 1);
  } else if (kind == "systematic") {
    strat = std::make_unique<SystematicSampler>(s, 8);
  } else if (kind == "exhaustive") {
    strat = std::make_unique<Exhaustive>(s);
  } else if (kind == "coordinate") {
    strat = std::make_unique<CoordinateDescent>(s);
  } else {
    harmony::AnnealingOptions opts;
    opts.max_evaluations = 300;
    strat = std::make_unique<SimulatedAnnealing>(s, opts);
  }
  drive(*strat, bowl);
  EXPECT_LE(strat->best_objective(), 5.0) << "strategy " << kind;
}

INSTANTIATE_TEST_SUITE_P(All, AnyStrategyFindsBowl,
                         ::testing::Values("random", "systematic", "exhaustive",
                                           "coordinate", "annealing"));

}  // namespace
