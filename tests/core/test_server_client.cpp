#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/client.hpp"
#include "core/net.hpp"
#include "core/server.hpp"

namespace {

using harmony::ServerOptions;
using harmony::TuningClient;
using harmony::TuningServer;

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start());
    ASSERT_GT(server_.port(), 0);
  }

  void TearDown() override { server_.stop(); }

  TuningServer server_;
};

TEST_F(ServerFixture, HelloAndRegister) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "test-app"));
  EXPECT_TRUE(client.add_int("x", 0, 100));
  EXPECT_TRUE(client.add_enum("mode", {"a", "b"}));
  EXPECT_TRUE(client.start(10));
  client.bye();
}

TEST_F(ServerFixture, FetchReportLoopMinimizes) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "quad"));
  ASSERT_TRUE(client.add_int("x", 0, 200));
  ASSERT_TRUE(client.start(80));
  while (auto config = client.fetch()) {
    const auto x = std::get<std::int64_t>(config->values[0]);
    ASSERT_TRUE(client.report(static_cast<double>((x - 123) * (x - 123))));
  }
  const auto best = client.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(best->values[0])), 123.0,
              10.0);
  client.bye();
}

TEST_F(ServerFixture, FetchWithoutStartErrors) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "app"));
  EXPECT_FALSE(client.fetch().has_value());
  EXPECT_NE(client.last_error().find("ERR"), std::string::npos);
  client.bye();
}

TEST_F(ServerFixture, StartWithoutParamsErrors) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "app"));
  EXPECT_FALSE(client.start(5));
  client.bye();
}

TEST_F(ServerFixture, BestBeforeMeasurementsErrors) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "app"));
  ASSERT_TRUE(client.add_int("x", 0, 5));
  ASSERT_TRUE(client.start(5));
  EXPECT_FALSE(client.best().has_value());
  client.bye();
}

TEST_F(ServerFixture, IterationBudgetEndsWithDone) {
  TuningClient client;
  ASSERT_TRUE(client.connect(server_.port(), "app"));
  ASSERT_TRUE(client.add_int("x", 0, 1000));
  ASSERT_TRUE(client.start(7));
  int fetched = 0;
  while (auto config = client.fetch()) {
    ++fetched;
    ASSERT_TRUE(client.report(1.0));
  }
  EXPECT_EQ(fetched, 7);
  client.bye();
}

TEST_F(ServerFixture, TwoConcurrentClientsIndependent) {
  auto run_client = [this](int target, std::int64_t* found) {
    TuningClient client;
    ASSERT_TRUE(client.connect(server_.port(), "worker"));
    ASSERT_TRUE(client.add_int("x", 0, 300));
    ASSERT_TRUE(client.start(60));
    while (auto config = client.fetch()) {
      const auto x = std::get<std::int64_t>(config->values[0]);
      ASSERT_TRUE(client.report(std::abs(static_cast<double>(x - target))));
    }
    const auto best = client.best();
    ASSERT_TRUE(best.has_value());
    *found = std::get<std::int64_t>(best->values[0]);
    client.bye();
  };
  std::int64_t a = -1;
  std::int64_t b = -1;
  std::thread t1([&] { run_client(50, &a); });
  std::thread t2([&] { run_client(250, &b); });
  t1.join();
  t2.join();
  EXPECT_NEAR(static_cast<double>(a), 50.0, 10.0);
  EXPECT_NEAR(static_cast<double>(b), 250.0, 10.0);
  EXPECT_EQ(server_.sessions_served(), 2);
}

TEST_F(ServerFixture, MalformedParamRejected) {
  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("HELLO raw"));
  ASSERT_TRUE(reader.read_line().has_value());
  ASSERT_TRUE(sock.send_line("PARAM INT broken"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u);
}

TEST_F(ServerFixture, UnknownVerbRejected) {
  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("FROBNICATE"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u);
}

TEST_F(ServerFixture, ReportWithoutFetchRejected) {
  harmony::net::Socket sock = harmony::net::connect_loopback(server_.port());
  ASSERT_TRUE(sock.valid());
  harmony::net::LineReader reader(sock);
  ASSERT_TRUE(sock.send_line("REPORT 1.0"));
  const auto reply = reader.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u);
}

TEST(TuningServerLifecycle, StopIsIdempotent) {
  TuningServer server;
  ASSERT_TRUE(server.start());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TuningServerLifecycle, ClientConnectToDeadPortFails) {
  TuningClient client;
  // Port 1 is essentially guaranteed closed.
  EXPECT_FALSE(client.connect(1, "app"));
  EXPECT_FALSE(client.ok());
}

}  // namespace
