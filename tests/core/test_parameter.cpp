#include "core/parameter.hpp"

#include <gtest/gtest.h>

namespace {

using harmony::Parameter;
using harmony::ParamType;
using harmony::Value;

TEST(ParameterInt, BasicProperties) {
  const auto p = Parameter::Integer("n", 1, 10);
  EXPECT_EQ(p.type(), ParamType::Int);
  EXPECT_EQ(p.name(), "n");
  EXPECT_EQ(p.count(), 10u);
  EXPECT_EQ(p.coord_min(), 0.0);
  EXPECT_EQ(p.coord_max(), 9.0);
}

TEST(ParameterInt, StepLattice) {
  const auto p = Parameter::Integer("n", 10, 50, 10);  // 10,20,30,40,50
  EXPECT_EQ(p.count(), 5u);
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(0.0)), 10);
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(4.0)), 50);
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(2.4)), 30);  // rounds
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(2.6)), 40);
}

TEST(ParameterInt, UnreachableHiTruncated) {
  const auto p = Parameter::Integer("n", 0, 9, 4);  // 0,4,8
  EXPECT_EQ(p.count(), 3u);
  EXPECT_EQ(p.int_hi(), 8);
}

TEST(ParameterInt, CoordClamping) {
  const auto p = Parameter::Integer("n", 1, 5);
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(-10.0)), 1);
  EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(100.0)), 5);
}

TEST(ParameterInt, ValueToCoordRoundtrip) {
  const auto p = Parameter::Integer("n", -4, 12, 2);
  for (std::int64_t v = -4; v <= 12; v += 2) {
    const double c = p.value_to_coord(Value{v});
    EXPECT_EQ(std::get<std::int64_t>(p.coord_to_value(c)), v);
  }
}

TEST(ParameterInt, ContainsRespectsStride) {
  const auto p = Parameter::Integer("n", 0, 10, 5);
  EXPECT_TRUE(p.contains(Value{std::int64_t{0}}));
  EXPECT_TRUE(p.contains(Value{std::int64_t{5}}));
  EXPECT_TRUE(p.contains(Value{std::int64_t{10}}));
  EXPECT_FALSE(p.contains(Value{std::int64_t{3}}));
  EXPECT_FALSE(p.contains(Value{std::int64_t{15}}));
  EXPECT_FALSE(p.contains(Value{3.0}));  // wrong kind
}

TEST(ParameterInt, InvalidRangesThrow) {
  EXPECT_THROW((void)Parameter::Integer("n", 5, 1), std::invalid_argument);
  EXPECT_THROW((void)Parameter::Integer("n", 0, 5, 0), std::invalid_argument);
  EXPECT_THROW((void)Parameter::Integer("n", 0, 5, -2), std::invalid_argument);
}

TEST(ParameterInt, SinglePointRange) {
  const auto p = Parameter::Integer("n", 3, 3);
  EXPECT_EQ(p.count(), 1u);
  EXPECT_EQ(p.coord_max(), 0.0);
  EXPECT_EQ(std::get<std::int64_t>(p.default_value()), 3);
}

TEST(ParameterReal, BasicProperties) {
  const auto p = Parameter::Real("x", -1.0, 3.0);
  EXPECT_EQ(p.type(), ParamType::Real);
  EXPECT_EQ(p.count(), 0u);
  EXPECT_EQ(p.coord_min(), -1.0);
  EXPECT_EQ(p.coord_max(), 3.0);
}

TEST(ParameterReal, CoordIsValue) {
  const auto p = Parameter::Real("x", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(p.coord_to_value(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(p.value_to_coord(Value{0.75}), 0.75);
}

TEST(ParameterReal, ClampsOutOfRange) {
  const auto p = Parameter::Real("x", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(p.coord_to_value(2.0)), 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(p.coord_to_value(-2.0)), 0.0);
}

TEST(ParameterReal, AcceptsIntValueAsCoord) {
  const auto p = Parameter::Real("x", 0.0, 10.0);
  EXPECT_DOUBLE_EQ(p.value_to_coord(Value{std::int64_t{4}}), 4.0);
}

TEST(ParameterReal, InvalidRangeThrows) {
  EXPECT_THROW((void)Parameter::Real("x", 2.0, 1.0), std::invalid_argument);
}

TEST(ParameterReal, DefaultIsMidpoint) {
  const auto p = Parameter::Real("x", 2.0, 6.0);
  EXPECT_DOUBLE_EQ(std::get<double>(p.default_value()), 4.0);
}

TEST(ParameterEnum, BasicProperties) {
  const auto p = Parameter::Enum("layout", {"lxyes", "yxles", "yxels"});
  EXPECT_EQ(p.type(), ParamType::Enum);
  EXPECT_EQ(p.count(), 3u);
  EXPECT_EQ(p.coord_max(), 2.0);
}

TEST(ParameterEnum, CoordSnapsToNearestLabel) {
  const auto p = Parameter::Enum("c", {"a", "b", "c"});
  EXPECT_EQ(std::get<std::string>(p.coord_to_value(0.4)), "a");
  EXPECT_EQ(std::get<std::string>(p.coord_to_value(0.6)), "b");
  EXPECT_EQ(std::get<std::string>(p.coord_to_value(9.0)), "c");
}

TEST(ParameterEnum, ValueToCoordFindsLabel) {
  const auto p = Parameter::Enum("c", {"a", "b", "c"});
  EXPECT_DOUBLE_EQ(p.value_to_coord(Value{std::string("b")}), 1.0);
}

TEST(ParameterEnum, UnknownLabelThrows) {
  const auto p = Parameter::Enum("c", {"a", "b"});
  EXPECT_THROW((void)p.value_to_coord(Value{std::string("z")}), std::invalid_argument);
}

TEST(ParameterEnum, WrongKindThrows) {
  const auto p = Parameter::Enum("c", {"a", "b"});
  EXPECT_THROW((void)p.value_to_coord(Value{std::int64_t{1}}), std::invalid_argument);
}

TEST(ParameterEnum, EmptyChoicesThrow) {
  EXPECT_THROW((void)Parameter::Enum("c", {}), std::invalid_argument);
}

TEST(ParameterEnum, DuplicateChoicesThrow) {
  EXPECT_THROW((void)Parameter::Enum("c", {"a", "a"}), std::invalid_argument);
}

TEST(ParameterEnum, Contains) {
  const auto p = Parameter::Enum("c", {"a", "b"});
  EXPECT_TRUE(p.contains(Value{std::string("a")}));
  EXPECT_FALSE(p.contains(Value{std::string("z")}));
  EXPECT_FALSE(p.contains(Value{std::int64_t{0}}));
}

TEST(ParameterTypeNames, ToString) {
  EXPECT_EQ(harmony::to_string(ParamType::Int), "INT");
  EXPECT_EQ(harmony::to_string(ParamType::Real), "REAL");
  EXPECT_EQ(harmony::to_string(ParamType::Enum), "ENUM");
}

// Property sweep: coord_to_value(value_to_coord(v)) is the identity on every
// lattice value, for a family of integer parameter shapes.
class IntRoundtrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IntRoundtrip, LatticeClosed) {
  const auto [lo, hi, step] = GetParam();
  const auto p = Parameter::Integer("n", lo, hi, step);
  for (std::uint64_t i = 0; i < p.count(); ++i) {
    const Value v = p.coord_to_value(static_cast<double>(i));
    EXPECT_TRUE(p.contains(v));
    EXPECT_DOUBLE_EQ(p.value_to_coord(v), static_cast<double>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, IntRoundtrip,
                         ::testing::Values(std::tuple{0, 10, 1},
                                           std::tuple{-7, 7, 1},
                                           std::tuple{1, 100, 7},
                                           std::tuple{5, 5, 1},
                                           std::tuple{-100, 100, 13},
                                           std::tuple{0, 1, 1}));

}  // namespace
