#include "core/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"

namespace {

using harmony::Config;
using harmony::ConstraintSet;
using harmony::EvaluationResult;
using harmony::MonotoneConstraint;
using harmony::NelderMead;
using harmony::NelderMeadOptions;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::Tuner;
using harmony::TunerOptions;

EvaluationResult eval_of(double v) {
  EvaluationResult r;
  r.objective = v;
  return r;
}

/// Drive a strategy directly (no Tuner) with a deterministic function.
template <typename Fn>
int drive(NelderMead& nm, const Fn& fn, int max_steps = 2000) {
  int steps = 0;
  while (steps < max_steps) {
    auto p = nm.propose();
    if (!p) break;
    nm.report(*p, eval_of(fn(*p)));
    ++steps;
  }
  return steps;
}

TEST(NelderMead, EmptySpaceThrows) {
  ParamSpace s;
  EXPECT_THROW(NelderMead nm(s), std::invalid_argument);
}

TEST(NelderMead, ReportWithoutProposeThrows) {
  ParamSpace s;
  s.add(Parameter::Real("x", 0, 1));
  NelderMead nm(s);
  EXPECT_THROW(nm.report(s.default_config(), eval_of(1.0)), std::logic_error);
}

TEST(NelderMead, ProposeIsIdempotentUntilReport) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 100));
  NelderMead nm(s);
  const auto a = nm.propose();
  const auto b = nm.propose();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST(NelderMead, MinimizesQuadratic1DReal) {
  ParamSpace s;
  s.add(Parameter::Real("x", -10.0, 10.0));
  NelderMeadOptions opts;
  opts.diameter_tolerance = 1e-6;
  NelderMead nm(s, opts);
  drive(nm, [&](const Config& c) {
    const double x = std::get<double>(c.values[0]);
    return (x - 3.0) * (x - 3.0);
  });
  ASSERT_TRUE(nm.best().has_value());
  EXPECT_NEAR(std::get<double>(nm.best()->values[0]), 3.0, 1e-2);
  EXPECT_TRUE(nm.converged());
}

TEST(NelderMead, MinimizesQuadratic2DReal) {
  ParamSpace s;
  s.add(Parameter::Real("x", -5.0, 5.0));
  s.add(Parameter::Real("y", -5.0, 5.0));
  NelderMeadOptions opts;
  opts.diameter_tolerance = 1e-7;
  NelderMead nm(s, opts);
  drive(nm, [&](const Config& c) {
    const double x = std::get<double>(c.values[0]);
    const double y = std::get<double>(c.values[1]);
    return (x - 1.0) * (x - 1.0) + 2.0 * (y + 2.0) * (y + 2.0);
  });
  ASSERT_TRUE(nm.best().has_value());
  EXPECT_NEAR(std::get<double>(nm.best()->values[0]), 1.0, 5e-2);
  EXPECT_NEAR(std::get<double>(nm.best()->values[1]), -2.0, 5e-2);
}

TEST(NelderMead, RosenbrockWithRestartsGetsClose) {
  ParamSpace s;
  s.add(Parameter::Real("x", -3.0, 3.0));
  s.add(Parameter::Real("y", -3.0, 3.0));
  NelderMeadOptions opts;
  opts.diameter_tolerance = 1e-8;
  opts.max_restarts = 4;
  NelderMead nm(s, opts);
  drive(nm, [&](const Config& c) {
    const double x = std::get<double>(c.values[0]);
    const double y = std::get<double>(c.values[1]);
    return 100.0 * (y - x * x) * (y - x * x) + (1.0 - x) * (1.0 - x);
  }, 5000);
  EXPECT_LT(nm.best_objective(), 1e-2);
}

TEST(NelderMead, DiscreteLatticeConvex) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 200));
  s.add(Parameter::Integer("b", 0, 200));
  NelderMeadOptions opts;
  opts.max_restarts = 2;
  NelderMead nm(s, opts);
  drive(nm, [&](const Config& c) {
    const double a = static_cast<double>(std::get<std::int64_t>(c.values[0]));
    const double b = static_cast<double>(std::get<std::int64_t>(c.values[1]));
    return (a - 37) * (a - 37) + (b - 150) * (b - 150);
  });
  ASSERT_TRUE(nm.best().has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(nm.best()->values[0])), 37,
              2);
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(nm.best()->values[1])), 150,
              2);
}

TEST(NelderMead, EnumDimensionFindsBestChoice) {
  ParamSpace s;
  s.add(Parameter::Enum("alg", {"heap", "quick", "merge", "bubble"}));
  s.add(Parameter::Integer("buf", 1, 64));
  NelderMeadOptions opts;
  opts.max_restarts = 3;
  NelderMead nm(s, opts);
  drive(nm, [&](const Config& c) {
    const auto& alg = std::get<std::string>(c.values[0]);
    const double buf = static_cast<double>(std::get<std::int64_t>(c.values[1]));
    const double base = alg == "quick" ? 1.0 : alg == "merge" ? 1.4 : 2.0;
    return base + 0.01 * (buf - 32) * (buf - 32);
  });
  ASSERT_TRUE(nm.best().has_value());
  EXPECT_EQ(std::get<std::string>(nm.best()->values[0]), "quick");
}

TEST(NelderMead, InvalidResultsAreAvoided) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 100));
  NelderMeadOptions opts;
  opts.max_restarts = 2;
  NelderMead nm(s, opts);
  int steps = 0;
  while (steps < 500) {
    auto p = nm.propose();
    if (!p) break;
    const auto x = std::get<std::int64_t>(p->values[0]);
    EvaluationResult r;
    if (x < 10) {
      r = EvaluationResult::infeasible();  // "crash" region
    } else {
      r.objective = static_cast<double>(x);
    }
    nm.report(*p, r);
    ++steps;
  }
  ASSERT_TRUE(nm.best().has_value());
  const auto best = std::get<std::int64_t>(nm.best()->values[0]);
  EXPECT_GE(best, 10);
  EXPECT_LE(best, 20);  // should still get near the feasible minimum
}

TEST(NelderMead, StallTerminates) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 1000));
  NelderMeadOptions opts;
  opts.max_stall = 5;
  NelderMead nm(s, opts);
  // Constant objective: nothing ever improves after the first report.
  const int steps = drive(nm, [](const Config&) { return 1.0; });
  EXPECT_TRUE(nm.converged());
  EXPECT_LE(steps, 40);
}

TEST(NelderMead, RespectsMonotoneConstraint) {
  // Two boundaries in (0, 30) that must stay ordered.
  ParamSpace s;
  s.add(Parameter::Integer("b0", 1, 29));
  s.add(Parameter::Integer("b1", 1, 29));
  ConstraintSet cs;
  cs.add(std::make_shared<MonotoneConstraint>(0, 2, 1.0));
  NelderMeadOptions opts;
  opts.max_restarts = 2;
  NelderMead nm(s, opts, std::nullopt, std::move(cs));
  int steps = 0;
  while (steps < 500) {
    auto p = nm.propose();
    if (!p) break;
    const auto b0 = std::get<std::int64_t>(p->values[0]);
    const auto b1 = std::get<std::int64_t>(p->values[1]);
    EXPECT_LT(b0, b1) << "constraint violated in proposal";
    EvaluationResult r;
    r.objective = std::abs(static_cast<double>(b0) - 10.0) +
                  std::abs(static_cast<double>(b1) - 20.0);
    nm.report(*p, r);
    ++steps;
  }
  ASSERT_TRUE(nm.best().has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(nm.best()->values[0])), 10,
              2);
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(nm.best()->values[1])), 20,
              2);
}

TEST(NelderMead, RestartsAreCountedAndBounded) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 50));
  NelderMeadOptions opts;
  opts.max_restarts = 3;
  NelderMead nm(s, opts);
  drive(nm, [](const Config& c) {
    const auto x = std::get<std::int64_t>(c.values[0]);
    return static_cast<double>((x - 25) * (x - 25));
  });
  EXPECT_TRUE(nm.converged());
  EXPECT_LE(nm.restarts_used(), 3);
}

TEST(NelderMead, SimplexDiameterShrinksOnConvexProblem) {
  ParamSpace s;
  s.add(Parameter::Real("x", -1.0, 1.0));
  s.add(Parameter::Real("y", -1.0, 1.0));
  NelderMead nm(s);
  const double initial = nm.simplex_diameter();
  drive(nm, [](const Config& c) {
    const double x = std::get<double>(c.values[0]);
    const double y = std::get<double>(c.values[1]);
    return x * x + y * y;
  });
  EXPECT_LT(nm.simplex_diameter(), initial);
}

TEST(NelderMead, WorksViaTunerWithCache) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 60));
  NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 2;
  NelderMead nm(s, nm_opts);
  TunerOptions topts;
  topts.max_iterations = 60;
  Tuner tuner(s, topts);
  int calls = 0;
  const auto result = tuner.run(nm, [&](const Config& c) {
    ++calls;
    const auto x = std::get<std::int64_t>(c.values[0]);
    EvaluationResult r;
    r.objective = static_cast<double>((x - 42) * (x - 42));
    return r;
  });
  ASSERT_TRUE(result.best.has_value());
  EXPECT_NEAR(static_cast<double>(std::get<std::int64_t>(result.best->values[0])),
              42, 2);
  EXPECT_EQ(calls, result.iterations);  // evaluator only sees distinct points
}

TEST(NelderMead, CoefficientOptionsRespected) {
  ParamSpace s;
  s.add(Parameter::Real("x", -1, 1));
  NelderMeadOptions opts;
  opts.reflection = 0.8;
  opts.expansion = 1.5;
  opts.contraction = 0.4;
  opts.shrink = 0.6;
  NelderMead nm(s, opts);
  drive(nm, [](const Config& c) {
    const double x = std::get<double>(c.values[0]);
    return x * x;
  });
  EXPECT_LT(nm.best_objective(), 1e-2);
}

TEST(NelderMead, StartsFromProvidedInitialConfig) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, 1000));
  Config init = s.default_config();
  s.set(init, "x", std::int64_t{900});
  NelderMead nm(s, {}, init);
  const auto first = nm.propose();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<std::int64_t>(first->values[0]), 900);
}

}  // namespace
