#include <gtest/gtest.h>

#include <sstream>

#include "core/exhaustive.hpp"
#include "core/history.hpp"
#include "core/nelder_mead.hpp"
#include "core/random_search.hpp"
#include "core/tuner.hpp"

namespace {

using harmony::Config;
using harmony::EvaluationResult;
using harmony::Exhaustive;
using harmony::History;
using harmony::NelderMead;
using harmony::Parameter;
using harmony::ParamSpace;
using harmony::RandomSearch;
using harmony::Tuner;
using harmony::TunerOptions;

ParamSpace line_space(int n) {
  ParamSpace s;
  s.add(Parameter::Integer("x", 0, n - 1));
  return s;
}

EvaluationResult eval_of(double v) {
  EvaluationResult r;
  r.objective = v;
  return r;
}

TEST(History, CountsDistinctIterationsOnly) {
  const auto s = line_space(10);
  History h(s);
  h.record(s.snap({1}), eval_of(5), /*cached=*/false);
  h.record(s.snap({1}), eval_of(5), /*cached=*/true);
  h.record(s.snap({2}), eval_of(4), /*cached=*/false);
  EXPECT_EQ(h.iterations(), 2);
  EXPECT_EQ(h.size(), 3u);
}

TEST(History, TracksBest) {
  const auto s = line_space(10);
  History h(s);
  h.record(s.snap({1}), eval_of(5), false);
  h.record(s.snap({2}), eval_of(3), false);
  h.record(s.snap({3}), eval_of(4), false);
  EXPECT_DOUBLE_EQ(h.best_objective(), 3.0);
  EXPECT_EQ(std::get<std::int64_t>(h.best_config()->values[0]), 2);
}

TEST(History, BestAfterPrefix) {
  const auto s = line_space(10);
  History h(s);
  h.record(s.snap({1}), eval_of(5), false);
  h.record(s.snap({2}), eval_of(3), false);
  h.record(s.snap({3}), eval_of(1), false);
  EXPECT_DOUBLE_EQ(h.best_after(1), 5.0);
  EXPECT_DOUBLE_EQ(h.best_after(2), 3.0);
  EXPECT_DOUBLE_EQ(h.best_after(99), 1.0);
}

TEST(History, InvalidResultsNeverBecomeBest) {
  const auto s = line_space(10);
  History h(s);
  h.record(s.snap({1}), EvaluationResult::infeasible(), false);
  EXPECT_FALSE(h.best_config().has_value());
  h.record(s.snap({2}), eval_of(7), false);
  EXPECT_DOUBLE_EQ(h.best_objective(), 7.0);
}

TEST(History, ImprovementTraceListsChangedParams) {
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 9));
  s.add(Parameter::Enum("mode", {"x", "y"}));
  History h(s);
  Config c1 = s.snap({1, 0});
  Config c2 = s.snap({1, 1});  // only mode changes
  Config c3 = s.snap({4, 1});  // only a changes
  h.record(c1, eval_of(10), false);
  h.record(c2, eval_of(8), false);
  h.record(c3, eval_of(5), false);
  const auto trace = h.improvement_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].param, "mode");
  EXPECT_EQ(trace[0].from, "x");
  EXPECT_EQ(trace[0].to, "y");
  EXPECT_EQ(trace[1].param, "a");
  EXPECT_EQ(trace[1].from, "1");
  EXPECT_EQ(trace[1].to, "4");
}

TEST(History, CsvHasHeaderAndRows) {
  const auto s = line_space(5);
  History h(s);
  h.record(s.snap({2}), eval_of(1.5), false);
  std::ostringstream os;
  h.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("iteration,cached,valid,objective,x"), std::string::npos);
  EXPECT_NE(csv.find("1,0,1,1.5,2"), std::string::npos);
}

TEST(Tuner, StopsAtIterationBudget) {
  const auto s = line_space(1000);
  RandomSearch rs(s, 10000, 3);
  TunerOptions opts;
  opts.max_iterations = 17;
  Tuner tuner(s, opts);
  const auto result = tuner.run(rs, [](const Config&) { return eval_of(1.0); });
  EXPECT_EQ(result.iterations, 17);
}

TEST(Tuner, CacheAvoidsReevaluation) {
  const auto s = line_space(3);  // tiny space, random search will repeat
  RandomSearch rs(s, 100, 5);
  Tuner tuner(s);
  int calls = 0;
  const auto result = tuner.run(rs, [&](const Config& c) {
    ++calls;
    return eval_of(static_cast<double>(std::get<std::int64_t>(c.values[0])));
  });
  EXPECT_LE(calls, 3);
  EXPECT_EQ(result.iterations, calls);
  EXPECT_GT(result.cache_hits, 0u);
}

TEST(Tuner, CacheDisabledReevaluates) {
  const auto s = line_space(3);
  RandomSearch rs(s, 50, 5);
  TunerOptions opts;
  opts.use_cache = false;
  opts.max_iterations = 50;
  Tuner tuner(s, opts);
  int calls = 0;
  (void)tuner.run(rs, [&](const Config&) {
    ++calls;
    return eval_of(1.0);
  });
  EXPECT_EQ(calls, 50);
}

TEST(Tuner, ReportsStrategyConvergence) {
  const auto s = line_space(4);
  Exhaustive ex(s);
  Tuner tuner(s);
  const auto result = tuner.run(ex, [](const Config& c) {
    return eval_of(static_cast<double>(std::get<std::int64_t>(c.values[0])));
  });
  EXPECT_TRUE(result.strategy_converged);
  EXPECT_EQ(std::get<std::int64_t>(result.best->values[0]), 0);
  EXPECT_DOUBLE_EQ(result.best_result.objective, 0.0);
}

TEST(Tuner, HistoryAccessibleAfterRun) {
  const auto s = line_space(6);
  Exhaustive ex(s);
  Tuner tuner(s);
  (void)tuner.run(ex, [](const Config& c) {
    return eval_of(static_cast<double>(std::get<std::int64_t>(c.values[0])));
  });
  EXPECT_EQ(tuner.history().iterations(), 6);
}

TEST(Tuner, CachePersistsAcrossRuns) {
  const auto s = line_space(6);
  Tuner tuner(s);
  int calls = 0;
  const auto count_eval = [&](const Config& c) {
    ++calls;
    return eval_of(static_cast<double>(std::get<std::int64_t>(c.values[0])));
  };
  Exhaustive ex1(s);
  (void)tuner.run(ex1, count_eval);
  EXPECT_EQ(calls, 6);
  Exhaustive ex2(s);
  (void)tuner.run(ex2, count_eval);  // all cached
  EXPECT_EQ(calls, 6);
}

TEST(Tuner, ClearCacheForcesReevaluation) {
  const auto s = line_space(4);
  Tuner tuner(s);
  int calls = 0;
  const auto count_eval = [&](const Config&) {
    ++calls;
    return eval_of(1.0);
  };
  Exhaustive ex1(s);
  (void)tuner.run(ex1, count_eval);
  tuner.clear_cache();
  Exhaustive ex2(s);
  (void)tuner.run(ex2, count_eval);
  EXPECT_EQ(calls, 8);
}

TEST(Tuner, NullEvaluatorThrows) {
  const auto s = line_space(4);
  Exhaustive ex(s);
  Tuner tuner(s);
  EXPECT_THROW((void)tuner.run(ex, nullptr), std::invalid_argument);
}

TEST(Tuner, BadOptionsThrow) {
  const auto s = line_space(4);
  TunerOptions opts;
  opts.max_iterations = 0;
  EXPECT_THROW(Tuner(s, opts), std::invalid_argument);
}

TEST(Tuner, NelderMeadIterationCountMatchesPaperStyle) {
  // The paper counts tuning cost in distinct configurations tried; the
  // tuner must report that number, not raw proposals.
  ParamSpace s;
  s.add(Parameter::Integer("a", 0, 100));
  s.add(Parameter::Integer("b", 0, 100));
  harmony::NelderMeadOptions nopts;
  nopts.max_restarts = 2;
  NelderMead nm(s, nopts);
  TunerOptions topts;
  topts.max_iterations = 30;
  Tuner tuner(s, topts);
  const auto result = tuner.run(nm, [](const Config& c) {
    const auto a = std::get<std::int64_t>(c.values[0]);
    const auto b = std::get<std::int64_t>(c.values[1]);
    return eval_of(static_cast<double>((a - 60) * (a - 60) + (b - 10) * (b - 10)));
  });
  EXPECT_LE(result.iterations, 30);
  EXPECT_GE(result.proposals, result.iterations);
}

}  // namespace
