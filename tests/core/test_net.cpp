#include "core/net.hpp"

#include <gtest/gtest.h>
#include <sys/uio.h>

#include <string>
#include <string_view>
#include <thread>

namespace {

using namespace harmony::net;

TEST(Net, ListenPicksEphemeralPort) {
  auto lr = listen_loopback(0);
  ASSERT_TRUE(lr.socket.valid());
  EXPECT_GT(lr.port, 0);
  EXPECT_LE(lr.port, 65535);
}

TEST(Net, ConnectAcceptRoundtrip) {
  auto lr = listen_loopback(0);
  ASSERT_TRUE(lr.socket.valid());
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.valid());
    ASSERT_TRUE(s.send_line("hello server"));
    LineReader reader(s);
    const auto reply = reader.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, "hello client");
  });
  Socket conn = accept_connection(lr.socket);
  ASSERT_TRUE(conn.valid());
  LineReader reader(conn);
  const auto line = reader.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "hello server");
  ASSERT_TRUE(conn.send_line("hello client"));
  client.join();
}

TEST(Net, LineReaderSplitsMultipleLinesInOneSegment) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_all("one\ntwo\r\nthree\n"));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn);
  EXPECT_EQ(reader.read_line().value(), "one");
  EXPECT_EQ(reader.read_line().value(), "two");  // CR stripped
  EXPECT_EQ(reader.read_line().value(), "three");
  client.join();
}

TEST(Net, LineReaderReturnsNulloptOnPeerClose) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    // close immediately without sending a full line
    ASSERT_TRUE(s.send_all("partial-without-newline"));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn);
  EXPECT_FALSE(reader.read_line().has_value());
  client.join();
}

TEST(Net, ShutdownUnblocksAccept) {
  auto lr = listen_loopback(0);
  ASSERT_TRUE(lr.socket.valid());
  std::thread stopper([&lr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lr.socket.shutdown();
  });
  Socket conn = accept_connection(lr.socket);
  EXPECT_FALSE(conn.valid());
  stopper.join();
}

TEST(Net, ConnectToClosedPortFails) {
  // Bind a port, close it, then connect — must fail cleanly.
  int dead_port;
  {
    auto lr = listen_loopback(0);
    dead_port = lr.port;
  }
  Socket s = connect_loopback(dead_port);
  EXPECT_FALSE(s.valid());
}

TEST(Net, SocketMoveSemantics) {
  auto lr = listen_loopback(0);
  const int fd = lr.socket.fd();
  Socket moved = std::move(lr.socket);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(lr.socket.valid());
  Socket assigned;
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.valid());
  EXPECT_FALSE(moved.valid());
}

TEST(Net, SendOnInvalidSocketFails) {
  const Socket s;
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(s.send_line("nope"));
}

TEST(Net, LineReaderReassemblesPartialSends) {
  // A line delivered one byte at a time (worst-case TCP fragmentation) must
  // come out whole, and the buffer must carry over into the next line.
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    const std::string payload = "FETCH with args\nBYE\n";
    for (const char c : payload) {
      ASSERT_TRUE(s.send_all(std::string(1, c)));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn);
  EXPECT_EQ(reader.read_line().value(), "FETCH with args");
  EXPECT_EQ(reader.read_line().value(), "BYE");
  EXPECT_FALSE(reader.overflowed());
  client.join();
}

TEST(Net, LineReaderRejectsOversizedUnterminatedLine) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    // Never send a newline: a well-behaved reader must cap the buffer
    // rather than grow it until the peer stops.
    ASSERT_TRUE(s.send_all(std::string(4096, 'x')));
    // Hold the connection open so nullopt means "limit", not "peer closed".
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn, /*max_line_bytes=*/256);
  EXPECT_EQ(reader.max_line_bytes(), 256u);
  EXPECT_FALSE(reader.read_line().has_value());
  EXPECT_TRUE(reader.overflowed());
  client.join();
}

TEST(Net, LineReaderRejectsOverlongTerminatedLine) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_line(std::string(1024, 'y')));
    ASSERT_TRUE(s.send_line("short"));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn, /*max_line_bytes=*/64);
  EXPECT_FALSE(reader.read_line().has_value());
  EXPECT_TRUE(reader.overflowed());
  // The reader is poisoned: even well-formed follow-up lines are refused,
  // so a server never resynchronizes mid-stream with a flooding client.
  EXPECT_FALSE(reader.read_line().has_value());
  EXPECT_TRUE(reader.overflowed());
  client.join();
}

TEST(Net, LineReaderZeroLimitMeansUnlimited) {
  auto lr = listen_loopback(0);
  const std::string big(1 << 16, 'z');
  std::thread client([&, port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_line(big));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn, /*max_line_bytes=*/0);
  const auto line = reader.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->size(), big.size());
  EXPECT_FALSE(reader.overflowed());
  client.join();
}

TEST(Net, LineReaderOutParamReusesBufferAcrossLines) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_all("a-fairly-long-first-line to size the buffer\n"));
    ASSERT_TRUE(s.send_all("short\nthird line\n"));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "a-fairly-long-first-line to size the buffer");
  const auto cap = line.capacity();
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "short");
  // The whole point of the overload: no reallocation once sized.
  EXPECT_EQ(line.capacity(), cap);
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "third line");
  ASSERT_FALSE(reader.read_line(line));  // EOF
  EXPECT_TRUE(line.empty());
  client.join();
}

TEST(Net, LineReaderOutParamOverflowLeavesOutEmpty) {
  auto lr = listen_loopback(0);
  std::thread client([port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_line(std::string(512, 'q')));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn, /*max_line_bytes=*/64);
  std::string line = "stale contents";
  EXPECT_FALSE(reader.read_line(line));
  EXPECT_TRUE(line.empty());
  EXPECT_TRUE(reader.overflowed());
  client.join();
}

TEST(Net, ByteRingAppendDrainConsumeWraps) {
  ByteRing ring;
  EXPECT_TRUE(ring.empty());
  struct iovec iov[2];
  EXPECT_EQ(ring.drain_iov(iov), 0);

  ring.append("hello ");
  ring.append(std::string_view("world"));
  EXPECT_EQ(ring.size(), 11u);
  int segs = ring.drain_iov(iov);
  ASSERT_GE(segs, 1);
  std::string gathered;
  for (int i = 0; i < segs; ++i) {
    gathered.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  EXPECT_EQ(gathered, "hello world");

  // Consume a prefix, then append enough to wrap the readable region around
  // the end of the storage: drain must expose both segments in order.
  ring.consume(6);
  const std::string tail(ring.capacity() - ring.size() - 2, 'A');
  ring.append(tail);
  segs = ring.drain_iov(iov);
  gathered.clear();
  for (int i = 0; i < segs; ++i) {
    gathered.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  EXPECT_EQ(gathered, "world" + tail);

  ring.consume(ring.size());
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.drain_iov(iov), 0);
}

TEST(Net, ByteRingSteadyStateDoesNotGrow) {
  ByteRing ring;
  ring.append(std::string(100, 'x'));
  ring.consume(100);
  const auto cap = ring.capacity();
  // A steady stream of append/consume at sizes below capacity must reuse the
  // existing storage — the event loop relies on this for allocation-free
  // flushes.
  struct iovec iov[2];
  for (int i = 0; i < 1000; ++i) {
    ring.append("REPORT+FETCH 1.25\nCONFIG 1 2 3\n");
    ASSERT_GE(ring.drain_iov(iov), 1);
    ring.consume(ring.size());
  }
  EXPECT_EQ(ring.capacity(), cap);
}

TEST(Net, ByteRingShrinkDecaysCapacityAfterBurst) {
  ByteRing ring;
  ring.append(std::string(256 * 1024, 'x'));  // burst grows the storage
  ring.consume(ring.size());
  ASSERT_GE(ring.capacity(), 256u * 1024u);
  ring.shrink(16 * 1024);
  EXPECT_LE(ring.capacity(), 16u * 1024u);
  // Still fully usable after compaction.
  ring.append("hello");
  struct iovec iov[2];
  ASSERT_GE(ring.drain_iov(iov), 1);
  EXPECT_EQ(std::string(static_cast<const char*>(iov[0].iov_base),
                        iov[0].iov_len),
            "hello");
}

TEST(Net, ByteRingShrinkPreservesWrappedPendingData) {
  ByteRing ring;
  ring.append(std::string(64 * 1024, 'a'));
  ring.consume(64 * 1024 - 10);  // 10 bytes of 'a' near the end of storage
  ring.append("0123456789");     // wraps around the end
  ASSERT_EQ(ring.size(), 20u);
  ring.shrink(1024);
  EXPECT_LE(ring.capacity(), 1024u);
  struct iovec iov[2];
  const int segs = ring.drain_iov(iov);
  std::string gathered;
  for (int i = 0; i < segs; ++i) {
    gathered.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  EXPECT_EQ(gathered, std::string(10, 'a') + "0123456789");
}

TEST(Net, ByteRingShrinkIsANoOpWhenDataExceedsTarget) {
  ByteRing ring;
  ring.append(std::string(8 * 1024, 'x'));
  const auto cap = ring.capacity();
  ring.shrink(1024);  // 8 KiB pending > 1 KiB target: must not drop data
  EXPECT_EQ(ring.capacity(), cap);
  EXPECT_EQ(ring.size(), 8u * 1024u);
}

TEST(Net, ByteRingShrinkToZeroFreesEmptyRing) {
  ByteRing ring;
  ring.append(std::string(4096, 'x'));
  ring.consume(4096);
  ring.shrink(0);
  EXPECT_EQ(ring.capacity(), 0u);
  ring.append("still works");
  EXPECT_EQ(ring.size(), 11u);
}

TEST(Net, LargePayloadRoundtrip) {
  auto lr = listen_loopback(0);
  const std::string big(1 << 18, 'x');
  std::thread client([&, port = lr.port] {
    Socket s = connect_loopback(port);
    ASSERT_TRUE(s.send_line(big));
  });
  Socket conn = accept_connection(lr.socket);
  LineReader reader(conn);
  const auto line = reader.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->size(), big.size());
  client.join();
}

}  // namespace
