#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/strategy_registry.hpp"
#include "core/tuner.hpp"

namespace {

using harmony::Config;
using harmony::ParamSpace;
using harmony::Parameter;
using harmony::StrategyOptions;
using harmony::StrategyRegistry;

ParamSpace small_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 16));
  space.add(Parameter::Integer("y", 0, 16));
  return space;
}

TEST(StrategyRegistry, ListsEveryStrategy) {
  const auto& names = StrategyRegistry::names();
  const std::vector<std::string> expected = {
      "nelder-mead", "random",    "systematic",         "exhaustive",
      "annealing",   "genetic",   "coordinate-descent"};
  EXPECT_EQ(names, expected);
  for (const auto& n : names) EXPECT_TRUE(StrategyRegistry::known(n));
  EXPECT_FALSE(StrategyRegistry::known("simplex"));
  EXPECT_FALSE(StrategyRegistry::known(""));
}

TEST(StrategyRegistry, MakeConstructsEachByName) {
  const auto space = small_space();
  for (const auto& n : StrategyRegistry::names()) {
    auto s = StrategyRegistry::make(n, space);
    ASSERT_NE(s, nullptr) << n;
    EXPECT_EQ(s->name(), n);
  }
}

TEST(StrategyRegistry, UnknownNameThrowsWithMessage) {
  const auto space = small_space();
  try {
    (void)StrategyRegistry::make("simplex", space);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("simplex"), std::string::npos);
  }
}

TEST(StrategyRegistry, UnknownOptionKeyRejectedWithKnownKeysListed) {
  const auto space = small_space();
  try {
    (void)StrategyRegistry::make("random", space, {{"smaples", "10"}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("smaples"), std::string::npos) << what;
    EXPECT_NE(what.find("samples"), std::string::npos) << what;
  }
}

TEST(StrategyRegistry, BadOptionValueRejectedWithValueInMessage) {
  const auto space = small_space();
  for (const auto& [name, key] :
       {std::pair<std::string, std::string>{"random", "samples"},
        {"annealing", "cooling"},
        {"nelder-mead", "reflection"},
        {"coordinate-descent", "max_sweeps"}}) {
    try {
      (void)StrategyRegistry::make(name, space, {{key, "banana"}});
      FAIL() << name << "." << key << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(key), std::string::npos) << what;
      EXPECT_NE(what.find("banana"), std::string::npos) << what;
    }
  }
}

TEST(StrategyRegistry, ValidateMatchesMakeWithoutConstructing) {
  std::string error;
  EXPECT_TRUE(StrategyRegistry::validate("random", {{"samples", "32"}}, &error));
  EXPECT_TRUE(error.empty());

  EXPECT_FALSE(StrategyRegistry::validate("simplex", {}, &error));
  EXPECT_NE(error.find("simplex"), std::string::npos);

  EXPECT_FALSE(
      StrategyRegistry::validate("random", {{"samples", "zero"}}, &error));
  EXPECT_NE(error.find("samples"), std::string::npos);

  EXPECT_FALSE(
      StrategyRegistry::validate("annealing", {{"warmth", "1"}}, &error));
  EXPECT_NE(error.find("warmth"), std::string::npos);
}

TEST(StrategyRegistry, GeneticUnknownOptionKeyListsKnownKeys) {
  const auto space = small_space();
  try {
    (void)StrategyRegistry::make("genetic", space, {{"popsize", "10"}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("popsize"), std::string::npos) << what;
    EXPECT_NE(what.find("population"), std::string::npos) << what;
    EXPECT_NE(what.find("mutation"), std::string::npos) << what;
    EXPECT_NE(what.find("elite"), std::string::npos) << what;
  }
}

TEST(StrategyRegistry, GeneticOutOfRangeOptionsRejected) {
  const auto space = small_space();
  const std::vector<std::pair<StrategyOptions, std::string>> cases = {
      {{{"population", "1"}}, "population must be >= 2"},
      {{{"population", "0"}}, "population must be >= 2"},
      {{{"generations", "0"}}, "generations must be >= 1"},
      {{{"mutation", "1.5"}}, "mutation must be in [0, 1]"},
      {{{"mutation", "-0.1"}}, "mutation must be in [0, 1]"},
      {{{"elite", "-1"}}, "elite must be >= 0"},
      {{{"population", "4"}, {"elite", "4"}}, "elite must be < population"},
      {{{"tournament", "0"}}, "tournament must be >= 1"},
      {{{"crossover", "2"}}, "crossover must be in [0, 1]"},
  };
  for (const auto& [opts, expected] : cases) {
    try {
      (void)StrategyRegistry::make("genetic", space, opts);
      FAIL() << "expected std::invalid_argument for " << expected;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
          << e.what();
    }
    // validate() (the server's pre-START screen) must agree with make().
    std::string error;
    EXPECT_FALSE(StrategyRegistry::validate("genetic", opts, &error));
    EXPECT_NE(error.find(expected), std::string::npos) << error;
  }
}

TEST(StrategyRegistry, GeneticBadNumericValuesRejected) {
  const auto space = small_space();
  for (const auto& key :
       {"population", "generations", "mutation", "elite", "seed"}) {
    try {
      (void)StrategyRegistry::make("genetic", space, {{key, "banana"}});
      FAIL() << key << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(key), std::string::npos) << what;
      EXPECT_NE(what.find("banana"), std::string::npos) << what;
    }
  }
}

TEST(StrategyRegistry, MakeBatchReturnsNativeGeneticAndAdaptedSerial) {
  const auto space = small_space();
  auto genetic = StrategyRegistry::make_batch(
      "genetic", space, {{"population", "6"}, {"generations", "2"}});
  ASSERT_NE(genetic, nullptr);
  EXPECT_EQ(genetic->name(), "genetic");
  // Native batch width: the whole population at once.
  EXPECT_EQ(genetic->propose_batch(32).size(), 6u);

  auto serial = StrategyRegistry::make_batch("random", space, {{"samples", "8"}});
  ASSERT_NE(serial, nullptr);
  EXPECT_EQ(serial->name(), "random");
  // Serial strategies ride the batch-size-1 adapter.
  EXPECT_EQ(serial->propose_batch(32).size(), 1u);
}

TEST(StrategyRegistry, OptionsReachTheStrategy) {
  const auto space = small_space();
  // A random search limited to 3 samples proposes exactly 3 configurations.
  auto s = StrategyRegistry::make("random", space,
                                  {{"samples", "3"}, {"seed", "7"}});
  int proposals = 0;
  while (auto c = s->propose()) {
    ++proposals;
    harmony::EvaluationResult r;
    r.objective = 1.0;
    s->report(*c, r);
  }
  EXPECT_EQ(proposals, 3);
}

TEST(StrategyRegistry, SeedChangesRandomTrajectory) {
  const auto space = small_space();
  const auto first_proposal = [&](StrategyOptions opts) {
    auto s = StrategyRegistry::make("random", space, opts);
    auto c = s->propose();
    return space.format(*c);
  };
  EXPECT_EQ(first_proposal({{"seed", "11"}}), first_proposal({{"seed", "11"}}));
  EXPECT_NE(first_proposal({{"seed", "11"}}), first_proposal({{"seed", "12"}}));
}

TEST(StrategyRegistry, InitialConfigSeedsStartPointStrategies) {
  const auto space = small_space();
  Config start = space.default_config();
  space.set(start, "x", std::int64_t{13});
  space.set(start, "y", std::int64_t{5});
  auto s = StrategyRegistry::make("coordinate-descent", space, {}, start);
  const auto first = s->propose();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(space.format(*first), space.format(start));
}

TEST(StrategyRegistry, MakeDefaultIsNelderMead) {
  const auto space = small_space();
  auto s = StrategyRegistry::make_default(space);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "nelder-mead");
}

TEST(StrategyRegistry, RegistryStrategyDrivesTunerEndToEnd) {
  const auto space = small_space();
  auto s = StrategyRegistry::make("systematic", space,
                                  {{"samples_per_dim", "5"}});
  harmony::TunerOptions topts;
  topts.max_iterations = 25;
  harmony::Tuner tuner(space, topts);
  const auto out = tuner.run(*s, [&](const Config& c) {
    harmony::EvaluationResult r;
    const double x = static_cast<double>(space.get_int(c, "x")) - 9.0;
    const double y = static_cast<double>(space.get_int(c, "y")) - 4.0;
    r.objective = x * x + y * y;
    return r;
  });
  ASSERT_TRUE(out.best.has_value());
  EXPECT_LE(out.best_result.objective, 2.0 + 1.0);
}

}  // namespace
