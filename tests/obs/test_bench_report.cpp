#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace obs = harmony::obs;

namespace {

obs::BenchReport sample_report() {
  obs::BenchReport r;
  r.name = "gate_gs2_sweep";
  r.best_config = "negrid=4 ntheta=10 nodes=11";
  r.best_value = 152.25;
  r.evaluations = 368;
  r.evals_to_best = 117;
  r.wall_s = 0.0625;
  r.speedup = 3.5;
  r.metrics["cache_hits"] = 12;
  r.metrics["wall_ratio"] = 1.75;
  return r;
}

}  // namespace

TEST(ObsBenchReport, FilenameConvention) {
  EXPECT_EQ(obs::BenchReport::filename("fig6"), "BENCH_fig6.json");
}

TEST(ObsBenchReport, SchemaHasAllRequiredKeys) {
  const auto doc = obs::json_parse(sample_report().to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_or("schema", ""), "ah-bench-report/1");
  for (const char* key : {"name", "best_config"}) {
    const auto* v = doc->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_string()) << key;
  }
  for (const char* key :
       {"best_value", "evaluations", "evals_to_best", "wall_s", "speedup"}) {
    const auto* v = doc->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_number()) << key;
  }
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());
}

TEST(ObsBenchReport, RoundTripsThroughParse) {
  const auto original = sample_report();
  const auto parsed = obs::BenchReport::parse(original.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->best_config, original.best_config);
  EXPECT_DOUBLE_EQ(parsed->best_value, original.best_value);
  EXPECT_EQ(parsed->evaluations, original.evaluations);
  EXPECT_EQ(parsed->evals_to_best, original.evals_to_best);
  EXPECT_DOUBLE_EQ(parsed->wall_s, original.wall_s);
  EXPECT_DOUBLE_EQ(parsed->speedup, original.speedup);
  EXPECT_EQ(parsed->metrics, original.metrics);
}

TEST(ObsBenchReport, ParseRejectsJunk) {
  EXPECT_FALSE(obs::BenchReport::parse("").has_value());
  EXPECT_FALSE(obs::BenchReport::parse("not json").has_value());
  EXPECT_FALSE(obs::BenchReport::parse("{}").has_value());  // wrong schema
  EXPECT_FALSE(
      obs::BenchReport::parse(R"({"schema":"ah-bench-report/1"})").has_value())
      << "a report without a name is useless for gating";
  EXPECT_FALSE(
      obs::BenchReport::parse(R"({"schema":"other/9","name":"x"})").has_value());
}

TEST(ObsBenchReport, WriteFileAndLoadRoundTrip) {
  const auto original = sample_report();
  const std::string dir = ::testing::TempDir();
  const auto path = original.write_file(dir);
  ASSERT_TRUE(path.has_value());
  EXPECT_NE(path->find("BENCH_gate_gs2_sweep.json"), std::string::npos);

  const auto loaded = obs::BenchReport::load(*path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->metrics, original.metrics);
  std::remove(path->c_str());
}

TEST(ObsBenchReport, LoadMissingFileFails) {
  EXPECT_FALSE(obs::BenchReport::load("/nonexistent/BENCH_x.json").has_value());
}

TEST(ObsBenchReport, EscapesConfigStrings) {
  obs::BenchReport r = sample_report();
  r.best_config = "layout=\"lxyes\"";
  const auto parsed = obs::BenchReport::parse(r.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->best_config, "layout=\"lxyes\"");
}
