#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace obs = harmony::obs;

namespace {

/// Every test runs against its own registry (except the explicitly global
/// ones), and restores the process-wide enabled flag on exit.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : was_(obs::enabled()) {}
  ~MetricsEnabledGuard() { obs::set_enabled(was_); }

 private:
  bool was_;
};

}  // namespace

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("runs");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  auto& g = reg.gauge("pool_size");
  g.set(8.0);
  g.set(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);

  auto& h = reg.histogram("short_run_s");
  h.record(0.5);
  h.record(2.0);
  h.record(0.125);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.625);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.875);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("x");
  auto& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(MetricsRegistry, HistogramBucketsAreLogScale) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0.0), 0);
  EXPECT_EQ(H::bucket_index(-1.0), 0);
  EXPECT_EQ(H::bucket_index(H::kBucketFloor), 0);
  // Each doubling advances one bucket.
  const int b1 = H::bucket_index(1e-6);
  EXPECT_EQ(H::bucket_index(2e-6), b1 + 1);
  EXPECT_EQ(H::bucket_index(4e-6), b1 + 2);
  // Huge values clamp into the last bucket instead of overflowing.
  EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);

  // Buckets are power-of-2 aligned to the floor: 1e-6 (1000x floor) and
  // 0.7e-6 (700x) both land in the (512x, 1024x] bucket.
  obs::Histogram h;
  h.record(1e-6);
  h.record(0.7e-6);
  EXPECT_EQ(h.bucket(b1), 2u);
  EXPECT_EQ(h.bucket(b1 + 1), 0u);
  h.record(2e-6);
  EXPECT_EQ(h.bucket(b1 + 1), 1u);
}

TEST(MetricsRegistry, HdrBucketsBoundRelativeError) {
  using H = obs::HdrHistogram;
  EXPECT_EQ(H::bucket_index(0.0), 0);
  EXPECT_EQ(H::bucket_index(-1.0), 0);
  EXPECT_EQ(H::bucket_index(H::kValueFloor), 0);
  EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);

  // Across nine decades, the bucket containing v has upper - lower <= v/32
  // (64 linear sub-buckets per octave -> width is 1/64 of the octave base,
  // and v is at least the octave base), so quantiles carry ~1.6% error.
  for (double v = 1e-8; v < 1e1; v *= 1.37) {
    const int i = H::bucket_index(v);
    const double hi = H::bucket_upper(i);
    const double lo = H::bucket_upper(i - 1);
    EXPECT_GE(v, lo) << v;  // boundary values land in the upper bucket
    EXPECT_LE(v, hi) << v;
    EXPECT_LE(hi - lo, v / 32.0) << v;
  }

  // bucket_upper is strictly increasing (cumulative scans depend on it).
  for (int i = 1; i < H::kBuckets; ++i) {
    EXPECT_GT(H::bucket_upper(i), H::bucket_upper(i - 1)) << i;
  }
}

TEST(MetricsRegistry, HdrQuantilesAreExactWithinBucketError) {
  obs::HdrHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 1..1000 microseconds, uniformly.
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
  EXPECT_NEAR(h.quantile(0.50), 500e-6, 500e-6 * 0.02);
  EXPECT_NEAR(h.quantile(0.95), 950e-6, 950e-6 * 0.02);
  EXPECT_NEAR(h.quantile(0.99), 990e-6, 990e-6 * 0.02);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e-3);   // clamped to observed max
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-6);   // clamped to observed min

  // A single-valued distribution reports that value exactly at any q.
  obs::HdrHistogram one;
  one.record(3.14e-3);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.14e-3);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 3.14e-3);
}

TEST(MetricsRegistry, HdrRegistryEntryKindIsDistinct) {
  obs::MetricsRegistry reg;
  auto& h = reg.hdr("lat");
  auto& again = reg.hdr("lat");
  EXPECT_EQ(&h, &again);
  EXPECT_THROW(reg.histogram("lat"), std::logic_error);
  EXPECT_THROW(reg.counter("lat"), std::logic_error);
  h.record(0.5);
  reg.reset_values();
  EXPECT_EQ(reg.hdr("lat").count(), 0u);

  const std::string json = reg.to_json();
  const auto doc = obs::json_parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_NE(doc->find("lat"), nullptr);
  EXPECT_EQ(doc->find("lat")->string_or("type", ""), "hdr");
  EXPECT_DOUBLE_EQ(doc->find("lat")->number_or("p99", -1), 0.0);
}

TEST(MetricsRegistry, HdrConcurrentRecordersLoseNothing) {
  obs::HdrHistogram h;
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) h.record(1e-6 * (t + 1));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 8e-6);
  EXPECT_NEAR(h.quantile(0.5), 4e-6, 4e-6 * 0.02);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(7);
  reg.gauge("b").set(1.5);
  reg.histogram("c").record(3.0);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
  EXPECT_EQ(reg.histogram("c").count(), 0u);
  EXPECT_DOUBLE_EQ(reg.histogram("c").min(), 0.0);
}

TEST(MetricsRegistry, JsonSnapshotIsValidAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.gauge("a.gauge").set(-1.25);
  reg.histogram("m.hist").record(4.0);
  const std::string json = reg.to_json();

  const auto doc = obs::json_parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->as_object().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->find("z.count")->number_or("value", -1), 2.0);
  EXPECT_EQ(doc->find("z.count")->string_or("type", ""), "counter");
  EXPECT_DOUBLE_EQ(doc->find("a.gauge")->number_or("value", 0), -1.25);
  EXPECT_DOUBLE_EQ(doc->find("m.hist")->number_or("count", 0), 1.0);
  EXPECT_DOUBLE_EQ(doc->find("m.hist")->number_or("mean", 0), 4.0);
  // Sorted keys -> deterministic output for diffing snapshots.
  EXPECT_LT(json.find("a.gauge"), json.find("m.hist"));
  EXPECT_LT(json.find("m.hist"), json.find("z.count"));
}

TEST(MetricsRegistry, ConcurrentCountersLoseNothing) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads hammer a shared counter, half their own — exercises
      // both same-metric atomics and cross-shard registry lookups.
      auto& shared = reg.counter("shared");
      auto& own = reg.counter("own." + std::to_string(t));
      for (int i = 0; i < kIncrements; ++i) {
        shared.add();
        own.add();
        reg.histogram("hist").record(1e-6 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("own." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIncrements));
  }
  auto& h = reg.histogram("hist");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 8e-6);
}

TEST(MetricsRegistry, DisabledHelpersRecordNothing) {
  const MetricsEnabledGuard guard;
  obs::set_enabled(false);
  const auto before = obs::MetricsRegistry::global().size();
  obs::count("disabled.counter");
  obs::gauge_set("disabled.gauge", 1.0);
  obs::observe("disabled.hist", 1.0);
  { const auto timer = obs::time_scope("disabled.timer_s"); }
  EXPECT_EQ(obs::MetricsRegistry::global().size(), before);
}

TEST(MetricsRegistry, SetEnabledTogglesConcurrentlyWithRecorders) {
  // Satellite acceptance: flipping obs::set_enabled() while other threads
  // are inside the gated record helpers must be race-free (the flag is a
  // single relaxed atomic; recorders may observe either value, but nothing
  // tears and nothing deadlocks). Run under TSan in CI.
  const MetricsEnabledGuard guard;
  constexpr int kRecorders = 4;
  constexpr int kToggles = 500;
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kRecorders);
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&stop, t] {
      const std::string name = "toggle.recorder." + std::to_string(t);
      while (!stop.load(std::memory_order_relaxed)) {
        obs::count(name);
        obs::gauge_set("toggle.gauge", static_cast<double>(t));
        obs::observe("toggle.hist", 1e-6);
        { const auto timer = obs::time_scope("toggle.timer_s"); }
      }
    });
  }
  for (int i = 0; i < kToggles; ++i) {
    obs::set_enabled(i % 2 == 0);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : recorders) t.join();
  // With the flag having been on, at least some records landed; exact
  // counts are inherently racy and deliberately unasserted.
  obs::set_enabled(true);
  obs::count("toggle.final");
  EXPECT_GE(obs::MetricsRegistry::global().counter("toggle.final").value(), 1u);
}

TEST(MetricsRegistry, EnabledHelpersRecordIntoGlobal) {
  const MetricsEnabledGuard guard;
  obs::set_enabled(true);
  obs::count("test.enabled.counter", 2);
  obs::observe("test.enabled.hist", 0.5);
  {
    const auto timer = obs::time_scope("test.enabled.timer_s");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.counter("test.enabled.counter").value(), 2u);
  EXPECT_GE(reg.histogram("test.enabled.hist").count(), 1u);
  auto& timer_hist = reg.histogram("test.enabled.timer_s");
  EXPECT_GE(timer_hist.count(), 1u);
  EXPECT_GE(timer_hist.max(), 0.0005);
}
