/// \file test_report_html.cpp
/// HTML session-report renderer: trace JSONL loading (including skip-on-bad
/// -line resilience), the convergence/timeline SVG generators, and the
/// acceptance-criterion end-to-end path — a real fig4-style coordinate-
/// descent search over the POP model, traced, serialized to JSONL, loaded
/// back, and rendered to a report containing an SVG convergence curve.

#include "obs/report_html.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "simcluster/simcluster.hpp"

namespace obs = harmony::obs;

namespace {

obs::TraceEvent ev(std::string strategy, std::string point, double objective,
                   double t0, double t1, std::uint32_t lane = 0,
                   bool cache_hit = false, bool valid = true) {
  obs::TraceEvent e;
  e.strategy = std::move(strategy);
  e.point = std::move(point);
  e.objective = objective;
  e.valid = valid;
  e.cache_hit = cache_hit;
  e.thread_lane = lane;
  e.t_start_us = t0;
  e.t_end_us = t1;
  return e;
}

TEST(ReportHtml, LoadTraceJsonlRoundTripsTracerOutput) {
  obs::SearchTracer tracer;
  tracer.record({"nelder-mead", "block_x=180 block_y=100", 1.5, true, false, 0,
                 10.0, 20.0});
  tracer.record({"nelder-mead", "block_x=240 block_y=80",
                 std::numeric_limits<double>::infinity(), false, true, 0, 20.0,
                 21.0});
  std::ostringstream os;
  tracer.write_jsonl(os);

  std::istringstream in(os.str());
  std::size_t skipped = 99;
  const auto events = obs::load_trace_jsonl(in, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].strategy, "nelder-mead");
  EXPECT_EQ(events[0].point, "block_x=180 block_y=100");
  EXPECT_DOUBLE_EQ(events[0].objective, 1.5);
  EXPECT_TRUE(events[0].valid);
  EXPECT_FALSE(events[0].cache_hit);
  // Non-finite objectives serialize as null and load back as infinity.
  EXPECT_FALSE(events[1].valid);
  EXPECT_TRUE(events[1].cache_hit);
  EXPECT_TRUE(std::isinf(events[1].objective));
  EXPECT_DOUBLE_EQ(events[1].t_end_us, 21.0);
}

TEST(ReportHtml, LoadSpanJsonlAppliesWallClockAnchor) {
  obs::SearchTracer tracer;
  obs::SpanEvent sp;
  sp.trace_id = 0xabcULL;
  sp.span_id = 0x1ULL;
  sp.parent_span = 0x2ULL;
  sp.name = "server.handle";
  sp.detail = "REPORT+FETCH";
  sp.t_start_us = 100.0;
  sp.t_end_us = 250.0;
  tracer.record_span(sp);
  tracer.record({"s", "p", 1.0, true, false, 0, 0.0, 1.0});  // must be skipped
  std::ostringstream os;
  tracer.write_jsonl(os);

  std::istringstream in(os.str());
  std::size_t skipped = 99;
  const auto spans = obs::load_span_jsonl(in, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(spans.size(), 1u);  // the evaluation line is not a span
  EXPECT_EQ(spans[0].trace_id, "0000000000000abc");
  EXPECT_EQ(spans[0].span_id, "0000000000000001");
  EXPECT_EQ(spans[0].parent_span, "0000000000000002");
  EXPECT_EQ(spans[0].name, "server.handle");
  EXPECT_EQ(spans[0].detail, "REPORT+FETCH");
  // Loaded timestamps are tracer-relative plus the wall anchor, so spans
  // from different processes land on one shared clock.
  EXPECT_DOUBLE_EQ(spans[0].t_start_us, 100.0 + tracer.wall_anchor_us());
  EXPECT_DOUBLE_EQ(spans[0].t_end_us - spans[0].t_start_us, 150.0);
}

TEST(ReportHtml, MergedChromeTraceAlignsProcessesOnSharedClock) {
  // Two "processes": a server whose span starts at wall +1000 us and a
  // worker whose nested span starts at wall +1400 us. After the merge both
  // must appear on one rebased axis with distinct pids.
  obs::MergedSpan server_span;
  server_span.trace_id = "00000000000000aa";
  server_span.span_id = "0000000000000001";
  server_span.name = "fleet.item";
  server_span.detail = "work 7";
  server_span.t_start_us = 1000.0;
  server_span.t_end_us = 2000.0;
  obs::MergedSpan worker_span;
  worker_span.trace_id = "00000000000000aa";
  worker_span.span_id = "0000000000000002";
  worker_span.parent_span = "0000000000000001";
  worker_span.name = "worker.eval";
  worker_span.thread_lane = 3;
  worker_span.t_start_us = 1400.0;
  worker_span.t_end_us = 1900.0;

  std::ostringstream os;
  obs::write_merged_chrome_trace(
      os, {{"server", {server_span}}, {"worker", {worker_span}}});
  const auto doc = obs::json_parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  const auto* events = doc->find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());

  bool saw_server = false;
  bool saw_worker = false;
  for (const auto& e : events->as_array()) {
    if (e.string_or("ph", "") != "X") continue;  // skip process metadata
    const auto* args = e.find("args");
    ASSERT_TRUE(args != nullptr);
    EXPECT_EQ(args->string_or("trace", ""), "00000000000000aa");
    if (e.string_or("name", "") == "fleet.item") {
      saw_server = true;
      EXPECT_DOUBLE_EQ(e.number_or("ts", -1), 0.0);  // rebased to earliest
      EXPECT_DOUBLE_EQ(e.number_or("dur", 0), 1000.0);
    } else if (e.string_or("name", "") == "worker.eval") {
      saw_worker = true;
      EXPECT_DOUBLE_EQ(e.number_or("ts", -1), 400.0);  // shared axis
      EXPECT_DOUBLE_EQ(e.number_or("tid", -1), 3.0);
      EXPECT_NE(e.number_or("pid", -1), -1.0);
      EXPECT_EQ(args->string_or("parent", ""), "0000000000000001");
    }
  }
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_worker);
}

TEST(ReportHtml, LoadTraceJsonlSkipsMalformedLines) {
  std::istringstream in(
      "{\"strategy\":\"s\",\"point\":\"p\",\"objective\":2.0,\"valid\":true,"
      "\"cache_hit\":false,\"thread\":1,\"t_start_us\":0,\"t_end_us\":1}\n"
      "this is not json\n"
      "\n"
      "[1,2,3]\n"
      "{\"strategy\":\"s\",\"point\":\"q\",\"objective\":1.0,\"valid\":true,"
      "\"cache_hit\":false,\"thread\":0,\"t_start_us\":2,\"t_end_us\":3}\n");
  std::size_t skipped = 0;
  const auto events = obs::load_trace_jsonl(in, &skipped);
  EXPECT_EQ(skipped, 2u);  // bad JSON + non-object; empty lines don't count
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].thread_lane, 1u);
  EXPECT_EQ(events[1].point, "q");
}

TEST(ReportHtml, ConvergenceSvgTracksBestSoFar) {
  const std::vector<obs::TraceEvent> events = {
      ev("cd", "a", 5.0, 0, 1), ev("cd", "b", 3.0, 1, 2),
      ev("cd", "c", 4.0, 2, 3), ev("cd", "d", 2.0, 3, 4)};
  std::ostringstream os;
  obs::write_convergence_svg(os, events);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg class=\"convergence\""), std::string::npos);
  EXPECT_NE(svg.find("<polyline class=\"best\""), std::string::npos);
  // y-axis labels span the observed objective range.
  EXPECT_NE(svg.find(">5<"), std::string::npos) << svg;
  EXPECT_NE(svg.find(">2<"), std::string::npos) << svg;
  EXPECT_NE(svg.find("evaluation 4"), std::string::npos);
  // One faint marker per valid evaluation.
  std::size_t circles = 0;
  for (auto pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, events.size());
}

TEST(ReportHtml, ConvergenceSvgWithNoValidEventsRendersPlaceholder) {
  const std::vector<obs::TraceEvent> events = {
      ev("cd", "a", std::numeric_limits<double>::infinity(), 0, 1, 0, false,
         /*valid=*/false)};
  std::ostringstream os;
  obs::write_convergence_svg(os, events);
  EXPECT_NE(os.str().find("no trace events"), std::string::npos);
}

TEST(ReportHtml, TimelineSvgHasOneRowPerLaneAndHollowCacheHits) {
  const std::vector<obs::TraceEvent> events = {
      ev("cd", "a", 5.0, 0, 100, 0), ev("cd", "b", 3.0, 0, 100, 1),
      ev("annealing", "c", 4.0, 100, 150, 2, /*cache_hit=*/true)};
  std::ostringstream os;
  obs::write_timeline_svg(os, events);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg class=\"timeline\""), std::string::npos);
  EXPECT_NE(svg.find("lane 0"), std::string::npos);
  EXPECT_NE(svg.find("lane 1"), std::string::npos);
  EXPECT_NE(svg.find("lane 2"), std::string::npos);
  EXPECT_NE(svg.find("<rect class=\"eval\""), std::string::npos);
  EXPECT_NE(svg.find("<rect class=\"hit\""), std::string::npos);
  // Legend lists both strategies.
  EXPECT_NE(svg.find(">cd</text>"), std::string::npos);
  EXPECT_NE(svg.find(">annealing</text>"), std::string::npos);
}

TEST(ReportHtml, ReportEmbedsBenchHeadlineAndEscapesTitle) {
  obs::BenchReport bench;
  bench.name = "fig4_pop_blocksize";
  bench.best_config = "block_x=<180>";
  bench.best_value = 1.25;
  bench.evaluations = 42;
  bench.speedup = 1.08;
  bench.metrics["total_default_s"] = 9.0;

  obs::HtmlReportOptions opts;
  opts.title = "report <with> \"markup\"";
  const std::vector<obs::TraceEvent> events = {ev("cd", "a", 1.25, 0, 1)};
  std::ostringstream os;
  obs::write_html_report(os, events, &bench, opts);
  const std::string html = os.str();
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("report &lt;with&gt; &quot;markup&quot;"),
            std::string::npos);
  EXPECT_EQ(html.find("<with>"), std::string::npos);
  EXPECT_NE(html.find("fig4_pop_blocksize"), std::string::npos);
  EXPECT_NE(html.find("block_x=&lt;180&gt;"), std::string::npos);
  EXPECT_NE(html.find("total_default_s"), std::string::npos);
  // Both charts plus the summary table are present.
  EXPECT_NE(html.find("class=\"convergence\""), std::string::npos);
  EXPECT_NE(html.find("class=\"timeline\""), std::string::npos);
  EXPECT_NE(html.find("class=\"summary\""), std::string::npos);
  // Self-contained: no scripts; the only URL is the SVG xmlns.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), html.find("http://www.w3.org/2000/svg"));
}

TEST(ReportHtml, ReportWithoutBenchSkipsBenchTable) {
  std::ostringstream os;
  obs::write_html_report(os, {ev("cd", "a", 1.0, 0, 1)}, nullptr);
  EXPECT_EQ(os.str().find("Benchmark report"), std::string::npos);
  EXPECT_NE(os.str().find("Convergence"), std::string::npos);
}

// Acceptance criterion: a REAL fig4-style search (coordinate descent tuning
// POP block sizes on a simulated 480-CPU machine), traced per evaluation,
// round-tripped through JSONL, renders to an HTML report whose SVG
// convergence curve reflects the actual search trajectory.
TEST(ReportHtml, Fig4StyleTraceRendersConvergenceReport) {
  using namespace minipop;
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto pspace = make_param_space(32);
  const auto mult = evaluate_multipliers(pspace, default_config(pspace));
  const auto machine = simcluster::presets::nersc_sp3(30, 16);

  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
  space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
  harmony::Config start = space.default_config();
  space.set(start, "block_x", std::int64_t{180});
  space.set(start, "block_y", std::int64_t{100});

  obs::SearchTracer tracer;
  harmony::CoordinateDescent search(space, start, 10, /*line_samples=*/20);
  harmony::TunerOptions topts;
  topts.max_iterations = 120;
  topts.max_proposals = 12000;
  topts.tracer = &tracer;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(search, [&](const harmony::Config& c) {
    const BlockShape shape{static_cast<int>(space.get_int(c, "block_x")),
                           static_cast<int>(space.get_int(c, "block_y"))};
    harmony::EvaluationResult r;
    r.objective = model.step_time(machine, 16, shape, mult).total_s;
    return r;
  });
  ASSERT_TRUE(result.best.has_value());
  ASSERT_GT(tracer.size(), 0u);

  // Serialize the trace and load it back the way tools/report_gen does.
  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  std::istringstream in(jsonl.str());
  std::size_t skipped = 0;
  const auto events = obs::load_trace_jsonl(in, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(events.size(), tracer.size());

  obs::BenchReport bench;
  bench.name = "fig4_pop_blocksize";
  bench.best_config = space.format(*result.best);
  bench.best_value = result.best_result.objective;
  bench.evaluations = result.iterations;

  obs::HtmlReportOptions opts;
  opts.title = "Session report: fig4_pop_blocksize";
  std::ostringstream os;
  obs::write_html_report(os, events, &bench, opts);
  const std::string html = os.str();

  // The report carries an SVG convergence curve with a real trajectory.
  EXPECT_NE(html.find("<svg class=\"convergence\""), std::string::npos);
  EXPECT_NE(html.find("<polyline class=\"best\""), std::string::npos);
  EXPECT_NE(html.find("class=\"timeline\""), std::string::npos);
  EXPECT_NE(html.find("Session report: fig4_pop_blocksize"),
            std::string::npos);
  EXPECT_NE(html.find("coordinate-descent"), std::string::npos);
  // The trace's best matches the tuner's best (same evaluations).
  EXPECT_NE(html.find(space.format(*result.best)), std::string::npos);
}

}  // namespace
