#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace obs = harmony::obs;

TEST(ObsJson, EscapesControlCharactersQuotesAndBackslashes) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(ObsJson, ParsesScalars) {
  EXPECT_TRUE(obs::json_parse("null")->is_null());
  EXPECT_TRUE(obs::json_parse("true")->as_bool());
  EXPECT_FALSE(obs::json_parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(obs::json_parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(obs::json_parse("-3.25e2")->as_number(), -325.0);
  EXPECT_EQ(obs::json_parse("\"hi\"")->as_string(), "hi");
}

TEST(ObsJson, ParsesEscapedStrings) {
  const auto v = obs::json_parse(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\n\tA");
}

TEST(ObsJson, ParsesNestedStructures) {
  const auto v = obs::json_parse(
      R"({"name":"x","vals":[1,2,3],"inner":{"flag":true,"n":-7}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->string_or("name", ""), "x");
  const auto* vals = v->find("vals");
  ASSERT_NE(vals, nullptr);
  ASSERT_EQ(vals->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(vals->as_array()[2].as_number(), 3.0);
  const auto* inner = v->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->find("flag")->as_bool());
  EXPECT_DOUBLE_EQ(inner->number_or("n", 0.0), -7.0);
}

TEST(ObsJson, WhitespaceIsInsignificant) {
  const auto v = obs::json_parse("  { \"a\" :\n[ 1 ,\t2 ] }  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->as_array().size(), 2u);
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::json_parse("").has_value());
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_FALSE(obs::json_parse("{\"a\":}").has_value());
  EXPECT_FALSE(obs::json_parse("\"unterminated").has_value());
  EXPECT_FALSE(obs::json_parse("tru").has_value());
  EXPECT_FALSE(obs::json_parse("{} trailing").has_value());
  EXPECT_FALSE(obs::json_parse("nan").has_value());
}

TEST(ObsJson, RoundTripsEscapedKeysAndValues) {
  const std::string doc =
      "{\"we\\\"ird\":\"v\\\\al\"}";
  const auto v = obs::json_parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_or("we\"ird", ""), "v\\al");
}
