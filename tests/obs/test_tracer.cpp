#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/harmony.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"

namespace obs = harmony::obs;

namespace {

obs::TraceEvent make_event(obs::SearchTracer& tracer, const std::string& point,
                           double objective, bool cache_hit) {
  obs::TraceEvent e;
  e.strategy = "test-strategy";
  e.point = point;
  e.objective = objective;
  e.valid = true;
  e.cache_hit = cache_hit;
  e.t_start_us = tracer.now_us();
  e.t_end_us = tracer.now_us();
  return e;
}

/// Tiny two-parameter space with a deterministic objective for driver tests.
harmony::ParamSpace small_space() {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("a", 0, 15));
  space.add(harmony::Parameter::Integer("b", 0, 15));
  return space;
}

}  // namespace

TEST(SearchTracer, RecordsAndSortsByStartTime) {
  obs::SearchTracer tracer;
  // Record out of order: later start first.
  auto late = make_event(tracer, "late", 2.0, false);
  late.t_start_us = 100.0;
  late.t_end_us = 110.0;
  auto early = make_event(tracer, "early", 1.0, false);
  early.t_start_us = 5.0;
  early.t_end_us = 9.0;
  tracer.record(late);
  tracer.record(early);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].point, "early");
  EXPECT_EQ(events[1].point, "late");
  EXPECT_EQ(tracer.size(), 2u);

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.lanes(), 0u);
}

TEST(SearchTracer, NowIsMonotonic) {
  obs::SearchTracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(SearchTracer, JsonlRoundTripsEveryField) {
  obs::SearchTracer tracer;
  auto e1 = make_event(tracer, "negrid=8 ntheta=22", 123.5, false);
  e1.strategy = "nelder-mead";
  e1.valid = false;
  auto e2 = make_event(tracer, "weird \"quoted\"\npoint", 0.25, true);
  tracer.record(e1);
  tracer.record(e2);

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<obs::JsonValue> parsed;
  while (std::getline(is, line)) {
    auto v = obs::json_parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    parsed.push_back(std::move(*v));
  }
  ASSERT_EQ(parsed.size(), 2u);

  const auto events = tracer.events();
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto& v = parsed[i];
    const auto& e = events[i];
    EXPECT_EQ(v.string_or("strategy", ""), e.strategy);
    EXPECT_EQ(v.string_or("point", ""), e.point);
    if (e.valid) {
      EXPECT_DOUBLE_EQ(v.number_or("objective", -1), e.objective);
    }
    EXPECT_EQ(v.find("valid")->as_bool(), e.valid);
    EXPECT_EQ(v.find("cache_hit")->as_bool(), e.cache_hit);
    EXPECT_DOUBLE_EQ(v.number_or("thread", -1), e.thread_lane);
    EXPECT_DOUBLE_EQ(v.number_or("t_start_us", -1), e.t_start_us);
    EXPECT_DOUBLE_EQ(v.number_or("t_end_us", -1), e.t_end_us);
  }
}

TEST(SearchTracer, InfiniteObjectiveSerializesAsNull) {
  obs::SearchTracer tracer;
  auto e = make_event(tracer, "bad", std::numeric_limits<double>::infinity(), false);
  e.valid = false;
  tracer.record(e);
  std::ostringstream os;
  tracer.write_jsonl(os);
  const auto v = obs::json_parse(os.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->find("objective")->is_null());
}

TEST(SearchTracer, ChromeTraceIsValidJsonWithLanesAndMetadata) {
  obs::SearchTracer tracer;
  tracer.record(make_event(tracer, "p1", 1.0, false));
  tracer.record(make_event(tracer, "p2", 2.0, true));

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const auto doc = obs::json_parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0;
  int metadata = 0;
  for (const auto& ev : events->as_array()) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "X") {
      ++complete;
      EXPECT_GE(ev.number_or("dur", -1), 0.0);
      EXPECT_NE(ev.find("args"), nullptr);
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.string_or("name", ""), "thread_name");
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_GE(metadata, 1);
}

TEST(SearchTracer, ConcurrentRecordersGetDistinctLanes) {
  obs::SearchTracer tracer;
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      std::string strategy = "t";
      strategy += std::to_string(t);
      for (int i = 0; i < kEvents; ++i) {
        tracer.record(make_event(tracer, strategy, double(i), false));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(tracer.size(), static_cast<std::size_t>(kThreads) * kEvents);
  EXPECT_EQ(tracer.lanes(), static_cast<std::size_t>(kThreads));
  // Each recording thread kept one stable lane.
  const auto events = tracer.events();
  std::set<std::pair<std::string, std::uint32_t>> lanes_by_thread;
  for (const auto& e : events) lanes_by_thread.insert({e.point, e.thread_lane});
  EXPECT_EQ(lanes_by_thread.size(), static_cast<std::size_t>(kThreads));
}

TEST(SearchTracer, SerialOfflineDriverTracesEveryProposal) {
  const auto space = small_space();
  obs::SearchTracer tracer;
  harmony::OfflineOptions opts;
  opts.max_runs = 30;
  opts.tracer = &tracer;
  harmony::OfflineDriver driver(space, opts);
  harmony::RandomSearch search(space, 200, 7);
  const auto result = driver.tune(search, [&](const harmony::Config& c, int) {
    harmony::ShortRunResult r;
    r.measured_s =
        1.0 + static_cast<double>(space.get_int(c, "a") + space.get_int(c, "b"));
    return r;
  });

  EXPECT_EQ(tracer.size(), driver.history().size());
  EXPECT_EQ(tracer.lanes(), 1u);  // serial driver records from one thread
  const auto events = tracer.events();
  std::size_t cached = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.strategy, "random");
    EXPECT_FALSE(e.point.empty());
    EXPECT_GE(e.t_end_us, e.t_start_us);
    if (e.cache_hit) ++cached;
  }
  EXPECT_EQ(static_cast<int>(events.size() - cached), result.runs);
}

TEST(SearchTracer, ParallelDriverProducesOneLanePerPoolThread) {
  const auto space = small_space();
  obs::SearchTracer tracer;
  harmony::engine::ParallelOfflineOptions opts;
  opts.max_runs = 64;
  opts.pool_size = 4;
  opts.use_cache = false;  // every proposal runs -> all workers get busy
  opts.tracer = &tracer;
  harmony::engine::ParallelOfflineDriver driver(space, opts);
  harmony::engine::BatchRandomSearch search(space, 400, 11);
  const auto result = driver.tune(search, [&](const harmony::Config& c, int) {
    harmony::ShortRunResult r;
    r.measured_s =
        1.0 + static_cast<double>(space.get_int(c, "a") * space.get_int(c, "b"));
    // A tiny busy-wait so every pool worker takes at least one task.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
    return r;
  });
  ASSERT_EQ(result.runs, 64);

  EXPECT_EQ(tracer.size(), driver.history().size());
  // Events are recorded from the pool workers: no more lanes than workers,
  // and (with 16 batches of 4 queued tasks) almost surely all of them.
  EXPECT_LE(tracer.lanes(), 4u);
  EXPECT_GE(tracer.lanes(), 2u);

  // The Chrome trace export carries the same lanes.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const auto doc = obs::json_parse(os.str());
  ASSERT_TRUE(doc.has_value());
  std::set<int> tids;
  for (const auto& ev : doc->find("traceEvents")->as_array()) {
    if (ev.string_or("ph", "") == "X") {
      tids.insert(static_cast<int>(ev.number_or("tid", -1)));
    }
  }
  EXPECT_EQ(tids.size(), tracer.lanes());
}
