#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace obs = harmony::obs;

namespace {

class EnabledGuard {
 public:
  EnabledGuard() : was_(obs::enabled()) {}
  ~EnabledGuard() { obs::set_enabled(was_); }

 private:
  bool was_;
};

TEST(EventLog, SeverityNamesRoundTrip) {
  EXPECT_STREQ(obs::severity_name(obs::Severity::Debug), "debug");
  EXPECT_STREQ(obs::severity_name(obs::Severity::Info), "info");
  EXPECT_STREQ(obs::severity_name(obs::Severity::Warn), "warn");
  EXPECT_STREQ(obs::severity_name(obs::Severity::Error), "error");
  EXPECT_EQ(obs::severity_from("warn"), obs::Severity::Warn);
  EXPECT_EQ(obs::severity_from("error"), obs::Severity::Error);
  EXPECT_EQ(obs::severity_from("bogus"), obs::Severity::Info);
}

TEST(EventLog, RecordAndTailOldestFirst) {
  obs::EventLog log(64);
  log.record(obs::Severity::Info, "server", "s/1", "opened");
  log.record(obs::Severity::Warn, "server", "s/1", "slow");
  log.record(obs::Severity::Error, "engine", "", "boom");
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.size(), 3u);

  const auto tail = log.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].message, "slow");
  EXPECT_EQ(tail[1].message, "boom");
  EXPECT_LT(tail[0].seq, tail[1].seq);
  EXPECT_EQ(tail[1].component, "engine");
  EXPECT_GE(tail[1].t_us, tail[0].t_us);
}

TEST(EventLog, RingBoundsRetentionButCountsTotal) {
  obs::EventLog log(16);
  EXPECT_EQ(log.capacity(), 16u);
  for (int i = 0; i < 500; ++i) {
    log.record(obs::Severity::Info, "c", "", std::to_string(i));
  }
  EXPECT_EQ(log.total(), 500u);
  EXPECT_LE(log.size(), 16u);
  // The newest record is always retained.
  const auto tail = log.tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].message, "499");
  EXPECT_EQ(tail[0].seq, 500u);
}

TEST(EventLog, TailLargerThanRetainedReturnsEverything) {
  obs::EventLog log(1024);
  for (int i = 0; i < 5; ++i) {
    log.record(obs::Severity::Debug, "c", "", "m");
  }
  EXPECT_EQ(log.tail(100).size(), 5u);
  EXPECT_TRUE(log.tail(0).empty());
}

TEST(EventLog, ClearDropsEventsKeepsSequence) {
  obs::EventLog log(64);
  log.record(obs::Severity::Info, "c", "", "one");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  log.record(obs::Severity::Info, "c", "", "two");
  const auto tail = log.tail(10);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 2u);  // sequence keeps counting across clear()
}

TEST(EventLog, EventJsonParsesAndEscapes) {
  obs::EventLog log(8);
  log.record(obs::Severity::Warn, "server", "s/1", "quote \" and \\ and\nnewline");
  std::ostringstream os;
  obs::EventLog::write_event_json(os, log.tail(1)[0]);
  const auto doc = obs::json_parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("severity", ""), "warn");
  EXPECT_EQ(doc->string_or("component", ""), "server");
  EXPECT_EQ(doc->string_or("session", ""), "s/1");
  EXPECT_EQ(doc->string_or("message", ""), "quote \" and \\ and\nnewline");
  EXPECT_GE(doc->number_or("seq", -1), 1.0);
}

TEST(EventLog, SinkMirrorsEveryRecordAsJsonl) {
  obs::EventLog log(8);
  std::ostringstream sink;
  log.set_sink(&sink);
  log.record(obs::Severity::Info, "a", "", "first");
  log.record(obs::Severity::Error, "b", "s", "second");
  log.set_sink(nullptr);
  log.record(obs::Severity::Info, "c", "", "not mirrored");

  std::istringstream lines(sink.str());
  std::string line;
  std::vector<std::string> components;
  while (std::getline(lines, line)) {
    const auto doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    components.push_back(doc->string_or("component", ""));
  }
  EXPECT_EQ(components, (std::vector<std::string>{"a", "b"}));
}

TEST(EventLog, WriteJsonlTail) {
  obs::EventLog log(64);  // 8 per shard, so same-thread records both survive
  log.record(obs::Severity::Info, "x", "", "1");
  log.record(obs::Severity::Info, "x", "", "2");
  std::ostringstream os;
  log.write_jsonl_tail(os, 2);
  int lines = 0;
  std::istringstream in(os.str());
  for (std::string l; std::getline(in, l);) {
    EXPECT_TRUE(obs::json_parse(l).has_value());
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(EventLog, GatedHelpersRespectEnabledFlag) {
  const EnabledGuard guard;
  auto& global = obs::EventLog::global();
  obs::set_enabled(false);
  const auto before = global.total();
  obs::log_info("test", "suppressed");
  EXPECT_EQ(global.total(), before);
  obs::set_enabled(true);
  obs::log_warn("test", "recorded", "sess");
  EXPECT_EQ(global.total(), before + 1);
}

TEST(EventLog, ConcurrentRecordersKeepAllEvents) {
  obs::EventLog log(1 << 14);
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      std::string component = "thread/";
      component += std::to_string(t);
      for (int i = 0; i < kEvents; ++i) {
        log.record(obs::Severity::Info, component, "", "event");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.total(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads) * kEvents);
  // Tail is globally ordered by sequence despite sharded storage.
  const auto tail = log.tail(kThreads * kEvents);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LT(tail[i - 1].seq, tail[i].seq);
  }
}

// Regression: a JSONL export must stay one-valid-object-per-line no matter
// what bytes land in a record. Slow-request messages carry client-supplied
// session ids and configs verbatim, so the escaper sees genuinely hostile
// strings in production, not just in tests.
TEST(EventLog, HostileStringsStayOneValidJsonObjectPerLine) {
  const std::vector<std::string> hostiles = {
      "plain",
      "quote\" backslash\\ slash/",
      "newline\n carriage\r tab\t",
      "embedded \"}{\"fake\":1} json",
      std::string("nul\0byte", 8),
      "controls \x01\x02\x1f\x7f",
      "unicode \xc3\xa9\xe2\x82\xac",  // é € (UTF-8 passes through)
      std::string(300, '\\'),
  };
  obs::EventLog log(64);
  for (const auto& h : hostiles) {
    log.record(obs::Severity::Warn, h, h, h);
  }
  std::ostringstream os;
  log.write_jsonl_tail(os, hostiles.size());
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value()) << "unparseable JSONL line: " << line;
    // The parsed message must round-trip the original bytes exactly
    // (NUL and other control bytes included), matched by index.
    ASSERT_LT(lines, hostiles.size());
    EXPECT_EQ(doc->string_or("message", ""), hostiles[lines]) << "line " << lines;
    EXPECT_EQ(doc->string_or("component", ""), hostiles[lines]);
    EXPECT_EQ(doc->string_or("session", ""), hostiles[lines]);
    ++lines;
  }
  EXPECT_EQ(lines, hostiles.size());
}

}  // namespace
