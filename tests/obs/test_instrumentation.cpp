// End-to-end checks that the instrumented components (offline drivers, the
// concurrent cache, the thread pool, Nelder-Mead, Session) actually record
// into the global MetricsRegistry when observability is enabled — and leave
// the registry untouched when disabled.

#include <gtest/gtest.h>

#include "core/harmony.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"

namespace obs = harmony::obs;

namespace {

class MetricsInstrumentation : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    obs::MetricsRegistry::global().reset_values();
  }
  void TearDown() override { obs::set_enabled(was_enabled_); }

  static harmony::ParamSpace small_space() {
    harmony::ParamSpace space;
    space.add(harmony::Parameter::Integer("a", 0, 9));
    space.add(harmony::Parameter::Integer("b", 0, 9));
    return space;
  }

  static std::uint64_t counter(const char* name) {
    return obs::MetricsRegistry::global().counter(name).value();
  }

  bool was_enabled_ = false;
};

harmony::ShortRunResult quadratic_run(const harmony::ParamSpace& space,
                                      const harmony::Config& c) {
  const auto a = static_cast<double>(space.get_int(c, "a"));
  const auto b = static_cast<double>(space.get_int(c, "b"));
  harmony::ShortRunResult r;
  r.measured_s = 1.0 + (a - 3) * (a - 3) + (b - 5) * (b - 5);
  return r;
}

}  // namespace

TEST_F(MetricsInstrumentation, SerialDriverCountsRunsAndCacheHits) {
  const auto space = small_space();
  harmony::OfflineOptions opts;
  opts.max_runs = 25;
  harmony::OfflineDriver driver(space, opts);
  harmony::NelderMead nm(space);
  const auto result = driver.tune(
      nm, [&](const harmony::Config& c, int) { return quadratic_run(space, c); });

  EXPECT_EQ(counter("offline.runs"), static_cast<std::uint64_t>(result.runs));
  EXPECT_EQ(counter("offline.proposals"),
            static_cast<std::uint64_t>(driver.history().size()));
  EXPECT_EQ(counter("offline.cache_hits"),
            static_cast<std::uint64_t>(driver.history().cached_count()));
  EXPECT_EQ(obs::MetricsRegistry::global().histogram("offline.short_run_s").count(),
            static_cast<std::uint64_t>(result.runs));
}

TEST_F(MetricsInstrumentation, NelderMeadCountsSimplexOperations) {
  const auto space = small_space();
  harmony::OfflineOptions opts;
  opts.max_runs = 60;
  harmony::OfflineDriver driver(space, opts);
  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 2;
  harmony::NelderMead nm(space, nm_opts);
  (void)driver.tune(
      nm, [&](const harmony::Config& c, int) { return quadratic_run(space, c); });

  const auto ops = counter("nm.reflect") + counter("nm.expand") +
                   counter("nm.contract_outside") + counter("nm.contract_inside") +
                   counter("nm.shrink");
  EXPECT_EQ(ops, static_cast<std::uint64_t>(nm.transformations()));
  EXPECT_EQ(counter("nm.restart"), static_cast<std::uint64_t>(nm.restarts_used()));
  EXPECT_GT(ops, 0u);
}

TEST_F(MetricsInstrumentation, ParallelEngineCountsPoolAndCacheActivity) {
  const auto space = small_space();
  harmony::engine::ParallelOfflineOptions opts;
  opts.max_runs = 40;
  opts.pool_size = 4;
  harmony::engine::ParallelOfflineDriver driver(space, opts);
  harmony::engine::BatchRandomSearch search(space, 200, 3);
  const auto result = driver.tune(search, [&](const harmony::Config& c, int) {
    return quadratic_run(space, c);
  });

  EXPECT_EQ(counter("engine.driver.runs"), static_cast<std::uint64_t>(result.runs));
  EXPECT_EQ(counter("engine.driver.batches"),
            static_cast<std::uint64_t>(result.batches));
  EXPECT_EQ(counter("engine.cache.hits") + counter("engine.cache.coalesced"),
            static_cast<std::uint64_t>(result.cache_hits + result.cache_coalesced));
  EXPECT_EQ(counter("engine.cache.misses"), static_cast<std::uint64_t>(result.runs));
  // Every evaluation task went through the pool.
  EXPECT_GE(counter("engine.pool.tasks"),
            static_cast<std::uint64_t>(driver.history().size()));
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::global().gauge("engine.pool.size").value(),
                   4.0);
}

TEST_F(MetricsInstrumentation, SessionCountsFetchReportPairs) {
  harmony::Session session("test-app");
  std::int64_t a = 0;
  session.add_int("a", 0, 9, 1, &a);
  int rounds = 0;
  while (rounds < 17 && session.fetch()) {
    session.report(static_cast<double>((a - 4) * (a - 4)));
    ++rounds;
  }
  EXPECT_EQ(counter("session.fetches"), static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(counter("session.reports"), static_cast<std::uint64_t>(rounds));
}

TEST_F(MetricsInstrumentation, DisabledLeavesRegistryUntouched) {
  obs::set_enabled(false);
  const auto space = small_space();
  harmony::OfflineOptions opts;
  opts.max_runs = 10;
  harmony::OfflineDriver driver(space, opts);
  harmony::NelderMead nm(space);
  (void)driver.tune(
      nm, [&](const harmony::Config& c, int) { return quadratic_run(space, c); });
  EXPECT_EQ(counter("offline.runs"), 0u);
  EXPECT_EQ(counter("offline.proposals"), 0u);
}
