#include "obs/status.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace obs = harmony::obs;

namespace {

TEST(Status, PublishUpdateSnapshot) {
  obs::StatusRegistry reg;
  auto h = reg.publish_session("offline/0");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(reg.session_count(), 1u);
  EXPECT_EQ(reg.sessions_started(), 1u);

  h.update([](obs::SessionStatus& s) {
    s.app = "pop";
    s.strategy = "nelder-mead";
    s.phase = "reflect";
    s.best_value = 1.25;
    s.best_config = "block_x=180";
    s.iterations = 7;
    s.cache_hits = 2;
  });
  const auto sessions = reg.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].id, "offline/0");
  EXPECT_EQ(sessions[0].app, "pop");
  EXPECT_EQ(sessions[0].phase, "reflect");
  EXPECT_DOUBLE_EQ(sessions[0].best_value, 1.25);
  EXPECT_EQ(sessions[0].iterations, 7u);
}

TEST(Status, EpochBumpsOnEveryChange) {
  obs::StatusRegistry reg;
  const auto e0 = reg.epoch();
  auto h = reg.publish_session("s");
  const auto e1 = reg.epoch();
  EXPECT_GT(e1, e0);
  h.update([](obs::SessionStatus& s) { s.iterations = 1; });
  const auto e2 = reg.epoch();
  EXPECT_GT(e2, e1);
  h.reset();
  EXPECT_GT(reg.epoch(), e2);
}

TEST(Status, HandleUnpublishesOnDestruction) {
  obs::StatusRegistry reg;
  {
    auto h = reg.publish_session("ephemeral");
    EXPECT_EQ(reg.session_count(), 1u);
  }
  EXPECT_EQ(reg.session_count(), 0u);
  // Lifetime total survives the unpublish.
  EXPECT_EQ(reg.sessions_started(), 1u);
}

TEST(Status, IdIsFixedAtPublishTime) {
  obs::StatusRegistry reg;
  auto h = reg.publish_session("fixed");
  h.update([](obs::SessionStatus& s) { s.id = "hijacked"; });
  const auto sessions = reg.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].id, "fixed");
}

TEST(Status, IdClashGetsSuffix) {
  obs::StatusRegistry reg;
  auto a = reg.publish_session("dup");
  auto b = reg.publish_session("dup");
  const auto sessions = reg.sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_NE(sessions[0].id, sessions[1].id);
  EXPECT_EQ(sessions[0].id.rfind("dup", 0), 0u);
  EXPECT_EQ(sessions[1].id.rfind("dup", 0), 0u);
}

TEST(Status, WorkerLanes) {
  obs::StatusRegistry reg;
  auto w0 = reg.publish_worker("pool/0", 0);
  auto w1 = reg.publish_worker("pool/0", 1);
  w0.set(true, 3);
  w1.set(false, 9);
  const auto workers = reg.workers();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].pool, "pool/0");
  EXPECT_TRUE(workers[0].busy);
  EXPECT_EQ(workers[0].tasks, 3u);
  EXPECT_FALSE(workers[1].busy);
  EXPECT_EQ(workers[1].tasks, 9u);
  w0.reset();
  EXPECT_EQ(reg.worker_count(), 1u);
}

TEST(Status, HandleMoveSemantics) {
  obs::StatusRegistry reg;
  auto a = reg.publish_session("mover");
  auto b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move test
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(reg.session_count(), 1u);
  obs::StatusRegistry::SessionHandle c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  c.reset();
  EXPECT_EQ(reg.session_count(), 0u);
}

TEST(Status, JsonSnapshotParsesAndNullsMissingBest) {
  obs::StatusRegistry reg;
  auto fresh = reg.publish_session("fresh");      // no measurement yet
  auto measured = reg.publish_session("measured");
  measured.update([](obs::SessionStatus& s) {
    s.app = "gs2";
    s.best_value = 0.5;
    s.best_config = "layout=yxles";
  });
  auto w = reg.publish_worker("pool/7", 2);
  w.set(true, 11);

  const auto doc = obs::json_parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->number_or("sessions_started", -1), 2.0);

  const auto* sessions = doc->find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_TRUE(sessions->is_array());
  ASSERT_EQ(sessions->as_array().size(), 2u);
  // Ordered by id: "fresh" < "measured".
  const auto& s0 = sessions->as_array()[0];
  ASSERT_NE(s0.find("best_value"), nullptr);
  EXPECT_TRUE(s0.find("best_value")->is_null());
  const auto& s1 = sessions->as_array()[1];
  EXPECT_EQ(s1.string_or("app", ""), "gs2");
  EXPECT_DOUBLE_EQ(s1.number_or("best_value", -1), 0.5);

  const auto* workers = doc->find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->as_array().size(), 1u);
  EXPECT_EQ(workers->as_array()[0].string_or("pool", ""), "pool/7");
  EXPECT_EQ(workers->as_array()[0].number_or("tasks", -1), 11.0);
}

TEST(Status, ConcurrentPublishersAndPollers) {
  obs::StatusRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<bool> stop{false};

  std::thread poller([&] {
    while (!stop.load()) {
      (void)reg.to_json();
      (void)reg.epoch();
    }
  });
  std::vector<std::thread> publishers;
  publishers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&reg, t] {
      std::string id = "session/";
      id += std::to_string(t);
      for (int i = 0; i < kRounds; ++i) {
        auto h = reg.publish_session(id);
        h.update([i](obs::SessionStatus& s) {
          s.iterations = static_cast<std::uint64_t>(i);
          s.best_value = static_cast<double>(i);
        });
      }  // handle drops -> unpublish
    });
  }
  for (auto& th : publishers) th.join();
  stop.store(true);
  poller.join();

  EXPECT_EQ(reg.session_count(), 0u);
  EXPECT_EQ(reg.sessions_started(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(Status, LatencyBoardSerializesQuantilesAndSlowCount) {
  obs::StatusRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.latency().request_s.record(static_cast<double>(i) * 1e-6);
  }
  reg.latency().slow_requests.fetch_add(3);
  auto h = reg.publish_session("lat/1");
  h.update([](obs::SessionStatus& s) {
    s.p50_us = 12.5;
    s.p95_us = 40.0;
    s.p99_us = 55.0;
  });

  const auto doc = obs::json_parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  const auto* lat = doc->find("latency");
  ASSERT_TRUE(lat != nullptr && lat->is_object());
  EXPECT_EQ(lat->number_or("count", 0), 100.0);
  EXPECT_EQ(lat->number_or("slow_requests", 0), 3.0);
  // 1..100 us uniform: the quantiles bracket the true values within the
  // HDR bucket's ~1.6% relative error.
  EXPECT_NEAR(lat->number_or("p50_us", 0), 50.0, 2.0);
  EXPECT_NEAR(lat->number_or("p99_us", 0), 99.0, 3.0);
  EXPECT_GE(lat->number_or("p99_us", 0), lat->number_or("p95_us", 0));
  const auto* sessions = doc->find("sessions");
  ASSERT_TRUE(sessions != nullptr && sessions->is_array());
  EXPECT_DOUBLE_EQ(sessions->as_array()[0].number_or("p50_us", 0), 12.5);
  EXPECT_DOUBLE_EQ(sessions->as_array()[0].number_or("p99_us", 0), 55.0);
}

// Runs under TSan in CI: recorders racing the JSON poller on the latency
// board must be clean (lock-free histogram buckets + relaxed counter).
TEST(Status, SlowRequestCounterConcurrentWithPollers) {
  obs::StatusRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      (void)reg.to_json();
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&reg] {
      for (int i = 0; i < kRounds; ++i) {
        reg.latency().request_s.record(1e-4);
        reg.latency().slow_requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : recorders) th.join();
  stop.store(true);
  poller.join();
  EXPECT_EQ(reg.latency().request_s.count(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(reg.latency().slow_requests.load(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

}  // namespace
