/// \file test_prometheus.cpp
/// Prometheus text exposition rendering (MetricsRegistry::write_prometheus).
/// The METRICS protocol verb serves exactly this output (plus a trailing
/// "# EOF" framing line added by the server), so these tests pin down the
/// exposition-format contract: counters get a _total suffix, histograms a
/// cumulative _bucket/_sum/_count family, names are sanitized and sorted.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace obs = harmony::obs;

namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(Prometheus, CounterRendersWithTotalSuffix) {
  obs::MetricsRegistry reg;
  reg.counter("server.roundtrips").add(3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_server_roundtrips_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ah_server_roundtrips_total 3\n"), std::string::npos);
}

TEST(Prometheus, GaugeRendersPlainName) {
  obs::MetricsRegistry reg;
  reg.gauge("sa.temperature").set(0.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_sa_temperature gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ah_sa_temperature 0.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramFamilyIsCumulativeAndConsistent) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("short_run_s");
  h.record(0.125);
  h.record(0.125);
  h.record(2.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_short_run_s histogram\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_sum 2.25\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);

  // Bucket counts must be cumulative (non-decreasing) and end at count().
  std::uint64_t prev = 0;
  std::uint64_t last = 0;
  int buckets = 0;
  for (const auto& line : lines_of(text)) {
    const auto pos = line.find("_bucket{le=\"");
    if (pos == std::string::npos) continue;
    ++buckets;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    last = std::stoull(line.substr(space + 1));
    EXPECT_GE(last, prev) << line;
    prev = last;
  }
  EXPECT_GE(buckets, 2) << text;  // 0.125 and 2.0 land in distinct buckets
  EXPECT_EQ(last, 3u);            // +Inf bucket covers everything

  // The le bound of the bucket a value lands in is >= the value itself
  // (upper bounds are kBucketFloor * 2^i, matching Histogram::bucket_index).
  const int idx = obs::Histogram::bucket_index(2.0);
  const double ub = obs::Histogram::kBucketFloor * std::ldexp(1.0, idx);
  EXPECT_GE(ub, 2.0);
  EXPECT_LT(ub / 2.0, 2.0 + 1e-12);  // and is tight within one doubling
}

TEST(Prometheus, NamesAreSanitizedAndPrefixed) {
  obs::MetricsRegistry reg;
  reg.counter("a.b-c").add(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("ah_a_b_c_total 1\n"), std::string::npos) << text;
  // The raw dotted name may appear in HELP comments but never in a sample or
  // TYPE line (metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*).
  for (const auto& line : lines_of(text)) {
    if (line.rfind("# HELP ", 0) == 0) continue;
    EXPECT_EQ(line.find("a.b-c"), std::string::npos) << line;
  }
}

TEST(Prometheus, OutputIsSortedByMetricName) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").set(1.0);
  reg.histogram("mid").record(1.0);
  const std::string text = reg.to_prometheus();
  const auto a = text.find("ah_alpha");
  const auto m = text.find("ah_mid");
  const auto z = text.find("ah_zeta");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(Prometheus, EveryLineIsCommentOrSample) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(-1.25);
  reg.histogram("h").record(1e-3);
  reg.hdr("q").record(2e-3);
  for (const auto& line : lines_of(reg.to_prometheus())) {
    if (line.rfind("# TYPE ah_", 0) == 0) continue;
    if (line.rfind("# HELP ah_", 0) == 0) continue;
    // Sample line: "ah_<name>[{labels}] <value>".
    ASSERT_EQ(line.rfind("ah_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(Prometheus, EveryFamilyHasHelpAndTypeBeforeSamples) {
  // Exposition-format conformance: each family's samples are preceded by a
  // "# HELP <family> ..." and a "# TYPE <family> <kind>" line, in that order,
  // and no family is announced twice. Parsed line by line, as a scraper would.
  obs::MetricsRegistry reg;
  reg.counter("server.roundtrips").add(2);
  reg.gauge("pool.size").set(8);
  reg.histogram("short_run_s").record(0.25);
  reg.hdr("server.verb.report_s").record(1e-3);

  std::string current_family;  // family announced by the last HELP/TYPE pair
  bool have_help = false;
  std::vector<std::string> announced;
  for (const auto& line : lines_of(reg.to_prometheus())) {
    std::istringstream in(line);
    if (line.rfind("# HELP ", 0) == 0) {
      std::string hash;
      std::string kw;
      std::string family;
      in >> hash >> kw >> family;
      for (const auto& prev : announced) EXPECT_NE(prev, family) << line;
      announced.push_back(family);
      current_family = family;
      have_help = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string hash;
      std::string kw;
      std::string family;
      std::string kind;
      in >> hash >> kw >> family >> kind;
      EXPECT_TRUE(have_help) << line;
      EXPECT_EQ(family, current_family) << "TYPE without matching HELP: " << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      continue;
    }
    // A sample must belong to the most recently announced family (histogram
    // families append _bucket/_sum/_count to the family name).
    ASSERT_FALSE(current_family.empty()) << "sample before any HELP: " << line;
    EXPECT_EQ(line.rfind(current_family, 0), 0u) << line;
  }
  EXPECT_EQ(announced.size(), 5u);  // 4 metrics + the hdr quantile family
}

TEST(Prometheus, LabelValuesAreEscapedPerSpec) {
  EXPECT_EQ(obs::prometheus_escape("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prometheus_escape("quo\"te"), "quo\\\"te");
  EXPECT_EQ(obs::prometheus_escape("new\nline"), "new\\nline");
  EXPECT_EQ(obs::prometheus_escape("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prometheus, HostileMetricNameDoesNotBreakHelpLine) {
  // A (pathological) dotted name with a backslash and newline must not smear
  // the HELP comment across multiple lines or leave a raw backslash.
  obs::MetricsRegistry reg;
  reg.counter("weird\\name\nx").add(1);
  for (const auto& line : lines_of(reg.to_prometheus())) {
    if (line.rfind("# HELP ", 0) != 0) continue;
    EXPECT_NE(line.find("weird\\\\name\\nx"), std::string::npos) << line;
  }
}

TEST(Prometheus, HdrFamilyRendersCumulativeBucketsAndQuantiles) {
  obs::MetricsRegistry reg;
  auto& h = reg.hdr("req_s");
  for (int i = 0; i < 98; ++i) h.record(1e-3);
  h.record(10e-3);
  h.record(10e-3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_req_s histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("ah_req_s_bucket{le=\"+Inf\"} 100\n"), std::string::npos);
  EXPECT_NE(text.find("ah_req_s_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ah_req_s_quantile gauge\n"), std::string::npos);

  // Cumulative, non-decreasing, ending at count().
  std::uint64_t prev = 0;
  std::uint64_t last = 0;
  for (const auto& line : lines_of(text)) {
    if (line.find("_bucket{le=\"") == std::string::npos) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    last = std::stoull(line.substr(space + 1));
    EXPECT_GE(last, prev) << line;
    prev = last;
  }
  EXPECT_EQ(last, 100u);

  // The quantile gauges reflect the distribution: p50 near 1ms, p99+ sees
  // the 10ms outlier within the ~1.6% bucket error.
  std::size_t n_quantiles = 0;
  for (const auto& line : lines_of(text)) {
    const auto pos = line.find("ah_req_s_quantile{quantile=\"");
    if (pos != 0) continue;
    ++n_quantiles;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    if (line.find("\"0.5\"") != std::string::npos) {
      EXPECT_NEAR(v, 1e-3, 2e-5) << line;
    } else if (line.find("\"0.99\"") != std::string::npos) {
      EXPECT_NEAR(v, 10e-3, 2e-4) << line;
    }
  }
  EXPECT_EQ(n_quantiles, 3u);
}

TEST(Prometheus, RendererAddsNoFramingMarker) {
  // The "# EOF" terminator is protocol framing added by the server's METRICS
  // handler, not part of the exposition itself.
  obs::MetricsRegistry reg;
  reg.counter("c").add(1);
  EXPECT_EQ(reg.to_prometheus().find("# EOF"), std::string::npos);
}

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  const obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.to_prometheus().empty());
}

}  // namespace
