/// \file test_prometheus.cpp
/// Prometheus text exposition rendering (MetricsRegistry::write_prometheus).
/// The METRICS protocol verb serves exactly this output (plus a trailing
/// "# EOF" framing line added by the server), so these tests pin down the
/// exposition-format contract: counters get a _total suffix, histograms a
/// cumulative _bucket/_sum/_count family, names are sanitized and sorted.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace obs = harmony::obs;

namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(Prometheus, CounterRendersWithTotalSuffix) {
  obs::MetricsRegistry reg;
  reg.counter("server.roundtrips").add(3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_server_roundtrips_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ah_server_roundtrips_total 3\n"), std::string::npos);
}

TEST(Prometheus, GaugeRendersPlainName) {
  obs::MetricsRegistry reg;
  reg.gauge("sa.temperature").set(0.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_sa_temperature gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ah_sa_temperature 0.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramFamilyIsCumulativeAndConsistent) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("short_run_s");
  h.record(0.125);
  h.record(0.125);
  h.record(2.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE ah_short_run_s histogram\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_sum 2.25\n"), std::string::npos);
  EXPECT_NE(text.find("ah_short_run_s_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);

  // Bucket counts must be cumulative (non-decreasing) and end at count().
  std::uint64_t prev = 0;
  std::uint64_t last = 0;
  int buckets = 0;
  for (const auto& line : lines_of(text)) {
    const auto pos = line.find("_bucket{le=\"");
    if (pos == std::string::npos) continue;
    ++buckets;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    last = std::stoull(line.substr(space + 1));
    EXPECT_GE(last, prev) << line;
    prev = last;
  }
  EXPECT_GE(buckets, 2) << text;  // 0.125 and 2.0 land in distinct buckets
  EXPECT_EQ(last, 3u);            // +Inf bucket covers everything

  // The le bound of the bucket a value lands in is >= the value itself
  // (upper bounds are kBucketFloor * 2^i, matching Histogram::bucket_index).
  const int idx = obs::Histogram::bucket_index(2.0);
  const double ub = obs::Histogram::kBucketFloor * std::ldexp(1.0, idx);
  EXPECT_GE(ub, 2.0);
  EXPECT_LT(ub / 2.0, 2.0 + 1e-12);  // and is tight within one doubling
}

TEST(Prometheus, NamesAreSanitizedAndPrefixed) {
  obs::MetricsRegistry reg;
  reg.counter("a.b-c").add(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("ah_a_b_c_total 1\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("a.b-c"), std::string::npos);
}

TEST(Prometheus, OutputIsSortedByMetricName) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").set(1.0);
  reg.histogram("mid").record(1.0);
  const std::string text = reg.to_prometheus();
  const auto a = text.find("ah_alpha");
  const auto m = text.find("ah_mid");
  const auto z = text.find("ah_zeta");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(Prometheus, EveryLineIsCommentOrSample) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(-1.25);
  reg.histogram("h").record(1e-3);
  for (const auto& line : lines_of(reg.to_prometheus())) {
    if (line.rfind("# TYPE ah_", 0) == 0) continue;
    // Sample line: "ah_<name>[{labels}] <value>".
    ASSERT_EQ(line.rfind("ah_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(Prometheus, RendererAddsNoFramingMarker) {
  // The "# EOF" terminator is protocol framing added by the server's METRICS
  // handler, not part of the exposition itself.
  obs::MetricsRegistry reg;
  reg.counter("c").add(1);
  EXPECT_EQ(reg.to_prometheus().find("# EOF"), std::string::npos);
}

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  const obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.to_prometheus().empty());
}

}  // namespace
