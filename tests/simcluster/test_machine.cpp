#include "simcluster/machine.hpp"

#include <gtest/gtest.h>

#include "simcluster/presets.hpp"

namespace {

using simcluster::Machine;
using simcluster::NetworkSpec;

TEST(Machine, HomogeneousLayout) {
  const auto m = Machine::homogeneous(4, 8);
  EXPECT_EQ(m.node_count(), 4);
  EXPECT_EQ(m.total_cpus(), 32);
  EXPECT_EQ(m.node_of_rank(0), 0);
  EXPECT_EQ(m.node_of_rank(7), 0);
  EXPECT_EQ(m.node_of_rank(8), 1);
  EXPECT_EQ(m.node_of_rank(31), 3);
  EXPECT_TRUE(m.is_homogeneous());
}

TEST(Machine, SameNode) {
  const auto m = Machine::homogeneous(2, 4);
  EXPECT_TRUE(m.same_node(0, 3));
  EXPECT_FALSE(m.same_node(3, 4));
}

TEST(Machine, HeterogeneousGroups) {
  Machine m;
  m.add_nodes(2, 1, 0.35, "PentiumII");
  m.add_nodes(2, 1, 1.6, "Pentium4");
  EXPECT_EQ(m.total_cpus(), 4);
  EXPECT_DOUBLE_EQ(m.rank_speed(0), 0.35);
  EXPECT_DOUBLE_EQ(m.rank_speed(3), 1.6);
  EXPECT_EQ(m.rank_cpu_name(0), "PentiumII");
  EXPECT_EQ(m.rank_cpu_name(2), "Pentium4");
  EXPECT_FALSE(m.is_homogeneous());
  EXPECT_DOUBLE_EQ(m.min_speed(), 0.35);
}

TEST(Machine, MixedCpusPerNode) {
  Machine m;
  m.add_nodes(1, 16, 1.0);
  m.add_nodes(2, 2, 2.0);
  EXPECT_EQ(m.total_cpus(), 20);
  EXPECT_EQ(m.node_of_rank(15), 0);
  EXPECT_EQ(m.node_of_rank(16), 1);
  EXPECT_EQ(m.node_of_rank(18), 2);
  EXPECT_DOUBLE_EQ(m.rank_speed(17), 2.0);
}

TEST(Machine, RankOutOfRangeThrows) {
  const auto m = Machine::homogeneous(2, 2);
  EXPECT_THROW((void)m.node_of_rank(-1), std::out_of_range);
  EXPECT_THROW((void)m.node_of_rank(4), std::out_of_range);
}

TEST(Machine, BadGroupArgsThrow) {
  Machine m;
  EXPECT_THROW(m.add_nodes(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_nodes(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_nodes(1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(m.add_nodes(1, 1, -1.0), std::invalid_argument);
}

TEST(NetworkSpecTest, TransferTimeLatencyPlusBandwidth) {
  NetworkSpec net;
  net.intra_latency_s = 1e-6;
  net.intra_bandwidth_Bps = 1e9;
  net.inter_latency_s = 1e-5;
  net.inter_bandwidth_Bps = 1e8;
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6, true), 1e-6 + 1e-3);
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6, false), 1e-5 + 1e-2);
  EXPECT_THROW((void)net.transfer_time(-1.0, true), std::invalid_argument);
}

TEST(NetworkSpecTest, IntraFasterThanInterInPresets) {
  for (const auto& m :
       {simcluster::presets::nersc_sp3(4, 16), simcluster::presets::xeon_myrinet(4, 2),
        simcluster::presets::pentium_hetero()}) {
    EXPECT_LT(m.network().transfer_time(1e6, true),
              m.network().transfer_time(1e6, false));
  }
}

TEST(Presets, Sp3Shape) {
  const auto m = simcluster::presets::nersc_sp3(30, 16);
  EXPECT_EQ(m.node_count(), 30);
  EXPECT_EQ(m.total_cpus(), 480);
  EXPECT_TRUE(m.is_homogeneous());
}

TEST(Presets, SeaborgMatchesSp3Family) {
  const auto m = simcluster::presets::seaborg(8, 16);
  EXPECT_EQ(m.total_cpus(), 128);
}

TEST(Presets, XeonClusterFasterCpus) {
  const auto xeon = simcluster::presets::xeon_myrinet(64, 2);
  const auto sp3 = simcluster::presets::nersc_sp3(64, 2);
  EXPECT_GT(xeon.rank_speed(0), sp3.rank_speed(0));
}

TEST(Presets, PentiumHeteroMatchesPaperFig3) {
  const auto m = simcluster::presets::pentium_hetero();
  EXPECT_EQ(m.total_cpus(), 4);
  // Two slow then two fast nodes, per the paper's footnote 3.
  EXPECT_LT(m.rank_speed(0), m.rank_speed(2));
  EXPECT_DOUBLE_EQ(m.rank_speed(0), m.rank_speed(1));
  EXPECT_DOUBLE_EQ(m.rank_speed(2), m.rank_speed(3));
}

TEST(Presets, Pentium4QuadHomogeneous) {
  const auto m = simcluster::presets::pentium4_quad();
  EXPECT_EQ(m.total_cpus(), 4);
  EXPECT_TRUE(m.is_homogeneous());
}

TEST(Presets, Cluster32Shape) {
  const auto m = simcluster::presets::cluster32();
  EXPECT_EQ(m.total_cpus(), 32);
}

TEST(Presets, HockneyShape) {
  const auto m = simcluster::presets::hockney(8, 4);
  EXPECT_EQ(m.total_cpus(), 32);
}

}  // namespace
