#include "simcluster/simulator.hpp"

#include <gtest/gtest.h>

#include "simcluster/collectives.hpp"

namespace {

using namespace simcluster;

Phase compute_phase(std::vector<double> per_rank) {
  Phase p;
  p.compute_ref_s = std::move(per_rank);
  return p;
}

TEST(Simulator, ComputeGatedBySlowestRank) {
  const auto m = Machine::homogeneous(1, 4);
  const Simulator sim(m, 4);
  const auto rep = sim.run(compute_phase({1.0, 2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(rep.compute_s, 4.0);
  EXPECT_DOUBLE_EQ(rep.total_s, 4.0);
  EXPECT_DOUBLE_EQ(rep.imbalance, 4.0 / 2.5);
}

TEST(Simulator, HeterogeneousSpeedsDivideWork) {
  Machine m;
  m.add_nodes(1, 1, 2.0);
  m.add_nodes(1, 1, 0.5);
  const Simulator sim(m, 2);
  const auto rep = sim.run(compute_phase({1.0, 1.0}));
  // Rank 0 takes 0.5s, rank 1 takes 2.0s.
  EXPECT_DOUBLE_EQ(rep.compute_s, 2.0);
}

TEST(Simulator, BalancedLoadImbalanceIsOne) {
  const auto m = Machine::homogeneous(1, 4);
  const Simulator sim(m, 4);
  const auto rep = sim.run(compute_phase({2.0, 2.0, 2.0, 2.0}));
  EXPECT_DOUBLE_EQ(rep.imbalance, 1.0);
}

TEST(Simulator, MessagesSerializePerSender) {
  const auto m = Machine::homogeneous(2, 2);
  const Simulator sim(m, 4);
  Phase p = compute_phase({0, 0, 0, 0});
  p.messages = {{0, 2, 1e6}, {0, 3, 1e6}};  // rank 0 sends twice, inter-node
  const auto rep1 = sim.run(p);
  Phase q = compute_phase({0, 0, 0, 0});
  q.messages = {{0, 2, 1e6}, {1, 3, 1e6}};  // two senders in parallel
  const auto rep2 = sim.run(q);
  EXPECT_GT(rep1.ptp_comm_s, rep2.ptp_comm_s);
  EXPECT_NEAR(rep1.ptp_comm_s, 2.0 * rep2.ptp_comm_s, 1e-12);
}

TEST(Simulator, CollectivesAccumulate) {
  const auto m = Machine::homogeneous(2, 4);
  const Simulator sim(m, 8);
  Phase p = compute_phase(std::vector<double>(8, 0.0));
  p.allreduce_count = 3;
  p.allreduce_bytes = 8.0;
  const auto rep = sim.run(p);
  EXPECT_DOUBLE_EQ(rep.collective_s, 3.0 * allreduce_time(m, 8, 8.0));
}

TEST(Simulator, MultiPhaseSums) {
  const auto m = Machine::homogeneous(1, 2);
  const Simulator sim(m, 2);
  const std::vector<Phase> phases{compute_phase({1.0, 0.5}),
                                  compute_phase({0.5, 2.0})};
  const auto rep = sim.run(phases);
  EXPECT_DOUBLE_EQ(rep.compute_s, 3.0);
  EXPECT_EQ(rep.phases, 2);
}

TEST(Simulator, PhaseRepeatScales) {
  const auto m = Machine::homogeneous(2, 2);
  const Simulator sim(m, 4);
  Phase p = compute_phase({1, 1, 1, 1});
  p.messages = {{0, 2, 1000.0}};
  p.allreduce_count = 1;
  Phase repeated = p;
  repeated.repeat(10);
  const auto rep1 = sim.run(p);
  const auto rep10 = sim.run(repeated);
  EXPECT_NEAR(rep10.compute_s, 10.0 * rep1.compute_s, 1e-9);
  EXPECT_NEAR(rep10.collective_s, 10.0 * rep1.collective_s, 1e-9);
  // Message bytes scale but latency is charged once per (aggregated) message.
  EXPECT_GT(rep10.ptp_comm_s, rep1.ptp_comm_s);
}

TEST(Simulator, RepeatRejectsBadCount) {
  Phase p;
  EXPECT_THROW(p.repeat(0), std::invalid_argument);
}

TEST(Simulator, MismatchedComputeVectorThrows) {
  const auto m = Machine::homogeneous(1, 4);
  const Simulator sim(m, 4);
  EXPECT_THROW((void)sim.run(compute_phase({1.0})), std::invalid_argument);
}

TEST(Simulator, MessageRankOutOfRangeThrows) {
  const auto m = Machine::homogeneous(1, 2);
  const Simulator sim(m, 2);
  Phase p = compute_phase({0, 0});
  p.messages = {{0, 5, 10.0}};
  EXPECT_THROW((void)sim.run(p), std::invalid_argument);
}

TEST(Simulator, BadRankCountThrows) {
  const auto m = Machine::homogeneous(1, 2);
  EXPECT_THROW(Simulator(m, 0), std::invalid_argument);
  EXPECT_THROW(Simulator(m, 3), std::invalid_argument);
}

TEST(Simulator, NoiseIsDeterministicPerSeed) {
  const auto m = Machine::homogeneous(1, 2);
  SimOptions opts;
  opts.noise_stddev = 0.05;
  opts.noise_seed = 31;
  const Simulator a(m, 2, opts);
  const Simulator b(m, 2, opts);
  const auto pa = compute_phase({1.0, 1.0});
  EXPECT_DOUBLE_EQ(a.run(pa).total_s, b.run(pa).total_s);
  SimOptions opts2 = opts;
  opts2.noise_seed = 32;
  const Simulator c(m, 2, opts2);
  EXPECT_NE(a.run(pa).total_s, c.run(pa).total_s);
}

TEST(Simulator, NoiseZeroMatchesDeterministic) {
  const auto m = Machine::homogeneous(1, 2);
  const Simulator plain(m, 2);
  SimOptions opts;
  opts.noise_stddev = 0.0;
  const Simulator noisy(m, 2, opts);
  const auto p = compute_phase({1.0, 2.0});
  EXPECT_DOUBLE_EQ(plain.run(p).total_s, noisy.run(p).total_s);
}

TEST(Simulator, SubsetOfMachineRanks) {
  const auto m = Machine::homogeneous(4, 4);
  const Simulator sim(m, 6);  // only 6 of 16 CPUs participate
  const auto rep = sim.run(compute_phase({1, 1, 1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(rep.compute_s, 1.0);
}

}  // namespace
