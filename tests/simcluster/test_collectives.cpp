#include "simcluster/collectives.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simcluster;

Machine two_by_four() { return Machine::homogeneous(2, 4); }

TEST(Collectives, PtpZeroForSelf) {
  const auto m = two_by_four();
  EXPECT_DOUBLE_EQ(ptp_time(m, 2, 2, 1e6), 0.0);
}

TEST(Collectives, PtpIntraCheaperThanInter) {
  const auto m = two_by_four();
  EXPECT_LT(ptp_time(m, 0, 1, 1e6), ptp_time(m, 0, 4, 1e6));
}

TEST(Collectives, PtpGrowsWithBytes) {
  const auto m = two_by_four();
  EXPECT_LT(ptp_time(m, 0, 4, 1e3), ptp_time(m, 0, 4, 1e6));
}

TEST(Collectives, SpansMultipleNodes) {
  const auto m = two_by_four();
  EXPECT_FALSE(spans_multiple_nodes(m, 4));
  EXPECT_TRUE(spans_multiple_nodes(m, 5));
}

TEST(Collectives, SingleRankCollectivesFree) {
  const auto m = two_by_four();
  EXPECT_DOUBLE_EQ(barrier_time(m, 1), 0.0);
  EXPECT_DOUBLE_EQ(broadcast_time(m, 1, 100), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_time(m, 1, 100), 0.0);
  EXPECT_DOUBLE_EQ(alltoall_time(m, 1, 100), 0.0);
}

TEST(Collectives, BarrierGrowsLogarithmically) {
  const auto m = Machine::homogeneous(16, 4);
  const double t8 = barrier_time(m, 8);
  const double t64 = barrier_time(m, 64);
  EXPECT_GT(t64, t8);
  EXPECT_LT(t64, 4.0 * t8);  // log growth, not linear
}

TEST(Collectives, AllreduceTwiceBroadcast) {
  const auto m = Machine::homogeneous(4, 4);
  EXPECT_DOUBLE_EQ(allreduce_time(m, 16, 8.0), 2.0 * broadcast_time(m, 16, 8.0));
}

TEST(Collectives, OnNodeCollectiveUsesFastLink) {
  const auto m = two_by_four();
  // 4 ranks fit on one node; 8 span both.
  EXPECT_LT(allreduce_time(m, 4, 8.0), allreduce_time(m, 8, 8.0));
}

TEST(Collectives, AlltoallMixesLocality) {
  const auto m = two_by_four();
  const double t = alltoall_time(m, 8, 1000.0);
  const auto& net = m.network();
  // 3 intra peers + 4 inter peers for rank 0.
  const double expected =
      3 * net.transfer_time(1000.0, true) + 4 * net.transfer_time(1000.0, false);
  EXPECT_DOUBLE_EQ(t, expected);
}

TEST(Collectives, AlltoallGrowsWithRanks) {
  const auto m = Machine::homogeneous(16, 4);
  EXPECT_LT(alltoall_time(m, 8, 100.0), alltoall_time(m, 64, 100.0));
}

TEST(Collectives, InvalidRankCountsThrow) {
  const auto m = two_by_four();
  EXPECT_THROW((void)barrier_time(m, 0), std::invalid_argument);
  EXPECT_THROW((void)barrier_time(m, 9), std::invalid_argument);
  EXPECT_THROW((void)allreduce_time(m, -1, 8), std::invalid_argument);
  EXPECT_THROW((void)alltoall_time(m, 100, 8), std::invalid_argument);
}

// Property sweep: all collective costs are monotone in byte count.
class CollectiveMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveMonotone, InBytes) {
  const auto m = Machine::homogeneous(8, 4);
  const int nranks = GetParam();
  double prev_bcast = -1;
  double prev_ar = -1;
  double prev_a2a = -1;
  for (const double bytes : {0.0, 1e3, 1e5, 1e7}) {
    const double b = broadcast_time(m, nranks, bytes);
    const double ar = allreduce_time(m, nranks, bytes);
    const double a2a = alltoall_time(m, nranks, bytes);
    EXPECT_GE(b, prev_bcast);
    EXPECT_GE(ar, prev_ar);
    EXPECT_GE(a2a, prev_a2a);
    prev_bcast = b;
    prev_ar = ar;
    prev_a2a = a2a;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveMonotone,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
