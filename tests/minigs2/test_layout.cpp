#include "minigs2/layout.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using minigs2::Layout;
using minigs2::Resolution;

TEST(LayoutTest, ParsesValidPermutations) {
  EXPECT_NO_THROW(Layout("lxyes"));
  EXPECT_NO_THROW(Layout("yxles"));
  EXPECT_NO_THROW(Layout("yxels"));
  EXPECT_NO_THROW(Layout("sxyel"));
}

TEST(LayoutTest, RejectsInvalidStrings) {
  EXPECT_THROW(Layout("xxles"), std::invalid_argument);  // repeated dim
  EXPECT_THROW(Layout("lxye"), std::invalid_argument);   // too short
  EXPECT_THROW(Layout("lxyesz"), std::invalid_argument); // too long
  EXPECT_THROW(Layout("abcde"), std::invalid_argument);  // wrong chars
  EXPECT_THROW(Layout(""), std::invalid_argument);
}

TEST(LayoutTest, OrderAccessors) {
  const Layout l("yxles");
  EXPECT_EQ(l.order(), "yxles");
  EXPECT_EQ(l.dim(0), 'y');
  EXPECT_EQ(l.dim(4), 's');
  EXPECT_EQ(l.position('y'), 0u);
  EXPECT_EQ(l.position('s'), 4u);
}

TEST(LayoutTest, PositionUnknownDimThrows) {
  const Layout l("yxles");
  EXPECT_THROW((void)l.position('q'), std::invalid_argument);
}

TEST(LayoutTest, Equality) {
  EXPECT_EQ(Layout("lxyes"), Layout("lxyes"));
  EXPECT_NE(Layout("lxyes"), Layout("yxles"));
}

TEST(LayoutTest, AllEnumerates120Permutations) {
  const auto all = Layout::all();
  EXPECT_EQ(all.size(), 120u);
  std::set<std::string> unique;
  for (const auto& l : all) unique.insert(l.order());
  EXPECT_EQ(unique.size(), 120u);
}

TEST(LayoutTest, DefaultIsPaperDefault) {
  EXPECT_EQ(Layout::default_layout().order(), "lxyes");
}

TEST(ResolutionTest, ExtentByDim) {
  Resolution r;
  r.ntheta = 26;
  r.negrid = 16;
  EXPECT_EQ(r.extent('x'), 26);
  EXPECT_EQ(r.extent('e'), 16);
  EXPECT_EQ(r.extent('y'), r.ny);
  EXPECT_EQ(r.extent('l'), r.nl);
  EXPECT_EQ(r.extent('s'), r.ns);
}

TEST(ResolutionTest, ExtentUnknownDimThrows) {
  Resolution r;
  EXPECT_THROW((void)r.extent('q'), std::invalid_argument);
}

TEST(ResolutionTest, TotalPointsProduct) {
  Resolution r;
  r.ntheta = 10;
  r.negrid = 8;
  r.ny = 4;
  r.nl = 3;
  r.ns = 2;
  EXPECT_EQ(r.total_points(), 10LL * 8 * 4 * 3 * 2);
}

TEST(ResolutionTest, ResolutionKnobsScaleMesh) {
  Resolution lo;
  lo.ntheta = 16;
  lo.negrid = 8;
  Resolution hi;
  hi.ntheta = 32;
  hi.negrid = 16;
  EXPECT_EQ(hi.total_points(), 4 * lo.total_points());
}

}  // namespace
