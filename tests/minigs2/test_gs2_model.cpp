#include "minigs2/gs2_model.hpp"

#include <gtest/gtest.h>

#include "simcluster/presets.hpp"

namespace {

using namespace minigs2;
namespace presets = simcluster::presets;

Resolution paper_res() {
  Resolution r;
  r.ntheta = 26;
  r.negrid = 16;
  return r;
}

TEST(Gs2Model, StepBreakdownSumsToTotal) {
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const auto rep =
      model.step_time(m, 128, paper_res(), Layout("lxyes"), CollisionModel::None);
  EXPECT_NEAR(rep.step_s,
              rep.compute_s + rep.fft_comm_s + rep.velocity_comm_s +
                  rep.collision_comm_s + rep.reduce_s,
              1e-12);
  EXPECT_GT(rep.compute_s, 0.0);
}

TEST(Gs2Model, TunedLayoutMuchFasterPerPaperFig5) {
  // Paper: lxyes -> yxles was 3.4x faster (collisionless, 128 CPUs Seaborg).
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const double t_def =
      model.run_time(m, 128, paper_res(), Layout("lxyes"), CollisionModel::None, 10);
  const double t_tuned =
      model.run_time(m, 128, paper_res(), Layout("yxles"), CollisionModel::None, 10);
  const double speedup = t_def / t_tuned;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 4.5);
}

TEST(Gs2Model, CollisionSpeedupSmallerButReal) {
  // Paper: 2.3x with the collision operator enabled.
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const double t_def = model.run_time(m, 128, paper_res(), Layout("lxyes"),
                                      CollisionModel::Lorentz, 10);
  const double t_tuned = model.run_time(m, 128, paper_res(), Layout("yxles"),
                                        CollisionModel::Lorentz, 10);
  const double speedup = t_def / t_tuned;
  EXPECT_GT(speedup, 1.7);
  EXPECT_LT(speedup, 3.2);
  // And collision runs are slower than collisionless ones.
  EXPECT_GT(t_def, model.run_time(m, 128, paper_res(), Layout("lxyes"),
                                  CollisionModel::None, 10));
}

TEST(Gs2Model, YxelsEquivalentToYxles) {
  // Both keep l,e local with the same distributed prefix; Fig. 5 shows them
  // performing alike.
  const Gs2Model model;
  const auto m = presets::seaborg(16, 8);
  const double a =
      model.run_time(m, 128, paper_res(), Layout("yxles"), CollisionModel::None, 10);
  const double b =
      model.run_time(m, 128, paper_res(), Layout("yxels"), CollisionModel::None, 10);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Gs2Model, RunTimeIncludesInit) {
  const Gs2Model model;
  const auto m = presets::xeon_myrinet(16, 2);
  const double t0 = model.init_time(m, 32, paper_res());
  const double t10 =
      model.run_time(m, 32, paper_res(), Layout("yxles"), CollisionModel::None, 10);
  EXPECT_GT(t0, 0.0);
  EXPECT_GT(t10, t0);
}

TEST(Gs2Model, PerStepCostConstant) {
  const Gs2Model model;
  const auto m = presets::xeon_myrinet(16, 2);
  const auto res = paper_res();
  const Layout l("yxles");
  const double t10 = model.run_time(m, 32, res, l, CollisionModel::None, 10);
  const double t1000 = model.run_time(m, 32, res, l, CollisionModel::None, 1000);
  const double init = model.init_time(m, 32, res);
  EXPECT_NEAR((t1000 - init) / (t10 - init), 100.0, 1.0);
}

TEST(Gs2Model, ResolutionScalesCompute) {
  const Gs2Model model;
  const auto m = presets::xeon_myrinet(16, 2);
  Resolution lo = paper_res();
  lo.negrid = 8;
  const auto rep_lo =
      model.step_time(m, 32, lo, Layout("yxles"), CollisionModel::None);
  const auto rep_hi =
      model.step_time(m, 32, paper_res(), Layout("yxles"), CollisionModel::None);
  EXPECT_LT(rep_lo.compute_s, rep_hi.compute_s);
}

TEST(Gs2Model, MisalignedLayoutPaysComputePenalty) {
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const auto aligned =
      model.step_time(m, 128, paper_res(), Layout("yxles"), CollisionModel::None);
  const auto ragged =
      model.step_time(m, 128, paper_res(), Layout("lxyes"), CollisionModel::None);
  EXPECT_GT(ragged.compute_s, aligned.compute_s);
  EXPECT_GT(ragged.imbalance, aligned.imbalance);
}

TEST(Gs2Model, VelocityTransposesOnlyWhenNeeded) {
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const auto good =
      model.step_time(m, 128, paper_res(), Layout("yxles"), CollisionModel::None);
  EXPECT_DOUBLE_EQ(good.velocity_comm_s, 0.0);
  const auto bad =
      model.step_time(m, 128, paper_res(), Layout("lxyes"), CollisionModel::None);
  EXPECT_GT(bad.velocity_comm_s, 0.0);
}

TEST(Gs2Model, CollisionCommOnlyWithCollisionsAndBadLayout) {
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  const auto no_coll =
      model.step_time(m, 128, paper_res(), Layout("lxyes"), CollisionModel::None);
  EXPECT_DOUBLE_EQ(no_coll.collision_comm_s, 0.0);
  const auto coll = model.step_time(m, 128, paper_res(), Layout("lxyes"),
                                    CollisionModel::Lorentz);
  EXPECT_GT(coll.collision_comm_s, 0.0);
  const auto coll_good = model.step_time(m, 128, paper_res(), Layout("yxles"),
                                         CollisionModel::Lorentz);
  EXPECT_DOUBLE_EQ(coll_good.collision_comm_s, 0.0);
}

TEST(Gs2Model, BadArgsThrow) {
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  EXPECT_THROW((void)model.step_time(m, 0, paper_res(), Layout("lxyes"),
                                     CollisionModel::None),
               std::invalid_argument);
  EXPECT_THROW((void)model.step_time(m, 999, paper_res(), Layout("lxyes"),
                                     CollisionModel::None),
               std::invalid_argument);
  EXPECT_THROW((void)model.run_time(m, 128, paper_res(), Layout("lxyes"),
                                    CollisionModel::None, 0),
               std::invalid_argument);
}

TEST(Gs2Model, BestLayoutOfAllIsVelocityLocal) {
  // Among all 120 layouts at 128 ranks, the winner must keep l,e local —
  // matching the paper's conclusion that yxles/yxels class layouts win.
  const Gs2Model model;
  const auto m = presets::seaborg(8, 16);
  double best = 1e300;
  Layout best_layout("lxyes");
  for (const auto& layout : Layout::all()) {
    const double t =
        model.run_time(m, 128, paper_res(), layout, CollisionModel::None, 10);
    if (t < best) {
      best = t;
      best_layout = layout;
    }
  }
  const auto info = decompose(best_layout, paper_res(), 128);
  EXPECT_TRUE(info.l_local);
  EXPECT_TRUE(info.e_local);
}

// Parameterized over the paper's Fig. 5 environments: the tuned layout must
// beat the default everywhere.
class Gs2Environments
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(Gs2Environments, TunedBeatsDefault) {
  const auto [kind, nodes, ppn] = GetParam();
  const simcluster::Machine m = kind == "seaborg"
                                    ? presets::seaborg(nodes, ppn)
                                    : presets::xeon_myrinet(nodes, ppn);
  const Gs2Model model;
  const int ranks = nodes * ppn;
  const double t_def =
      model.run_time(m, ranks, paper_res(), Layout("lxyes"), CollisionModel::None, 10);
  const double t_tuned =
      model.run_time(m, ranks, paper_res(), Layout("yxles"), CollisionModel::None, 10);
  EXPECT_LT(t_tuned, t_def);
}

INSTANTIATE_TEST_SUITE_P(
    PaperEnvironments, Gs2Environments,
    ::testing::Values(std::tuple{"seaborg", 8, 16}, std::tuple{"seaborg", 16, 8},
                      std::tuple{"seaborg", 32, 4}, std::tuple{"linux", 64, 2}));

}  // namespace
