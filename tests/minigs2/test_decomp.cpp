#include "minigs2/decomp.hpp"

#include <gtest/gtest.h>

namespace {

using namespace minigs2;

Resolution paper_res() {
  Resolution r;
  r.ntheta = 26;
  r.negrid = 16;
  return r;  // ny=64, nl=20, ns=2
}

TEST(Decomp, SingleRankEverythingLocal) {
  const auto info = decompose(Layout("lxyes"), paper_res(), 1);
  EXPECT_TRUE(info.distributed.empty());
  EXPECT_TRUE(info.x_local && info.y_local && info.l_local && info.e_local &&
              info.s_local);
  EXPECT_DOUBLE_EQ(info.imbalance, 1.0);
  EXPECT_FALSE(info.needs_fft_transpose());
  EXPECT_FALSE(info.needs_velocity_transpose());
}

TEST(Decomp, DefaultLayoutAt128DistributesLandX) {
  // lxyes: l (20) alone cannot cover 128 ranks, so l and x are split.
  const auto info = decompose(Layout("lxyes"), paper_res(), 128);
  EXPECT_EQ(info.distributed, "lx");
  EXPECT_FALSE(info.l_local);
  EXPECT_FALSE(info.x_local);
  EXPECT_TRUE(info.e_local);
  EXPECT_TRUE(info.needs_fft_transpose());
  EXPECT_TRUE(info.needs_velocity_transpose());
}

TEST(Decomp, TunedLayoutAt128KeepsVelocityLocal) {
  // yxles: y*x = 1664 covers 128 ranks; l and e stay local — this is why
  // the paper's tuned layout wins.
  const auto info = decompose(Layout("yxles"), paper_res(), 128);
  EXPECT_EQ(info.distributed, "yx");
  EXPECT_TRUE(info.l_local);
  EXPECT_TRUE(info.e_local);
  EXPECT_TRUE(info.needs_fft_transpose());
  EXPECT_FALSE(info.needs_velocity_transpose());
}

TEST(Decomp, AlignmentGivesPerfectBalance) {
  // y*x = 64*26 = 1664 = 13*128: divides evenly.
  const auto info = decompose(Layout("yxles"), paper_res(), 128);
  EXPECT_DOUBLE_EQ(info.imbalance, 1.0);
}

TEST(Decomp, MisalignmentCreatesImbalance) {
  // l*x = 520 does not divide by 128 -> ceil(520/128)=5 chunks max.
  const auto info = decompose(Layout("lxyes"), paper_res(), 128);
  EXPECT_NEAR(info.imbalance, 5.0 * 128.0 / 520.0, 1e-12);
  EXPECT_GT(info.imbalance, 1.2);
}

TEST(Decomp, SingleDimCoversSmallRankCounts) {
  // y=64 alone covers 64 ranks exactly.
  const auto info = decompose(Layout("yxles"), paper_res(), 64);
  EXPECT_EQ(info.distributed, "y");
  EXPECT_TRUE(info.x_local);
  EXPECT_DOUBLE_EQ(info.imbalance, 1.0);
  // y is distributed, so the FFT still needs a transpose even though x is local.
  EXPECT_TRUE(info.needs_fft_transpose());
}

TEST(Decomp, SpeciesFirstLayoutSplitsDeep) {
  // s=2 first: needs many dims to cover 128 ranks.
  const auto info = decompose(Layout("sxyel"), paper_res(), 128);
  EXPECT_GE(info.distributed.size(), 2u);
  EXPECT_FALSE(info.s_local);
}

TEST(Decomp, VelocityOnlyLayoutAvoidsFftTranspose) {
  // les covers: l*e = 320 >= 128 -> x,y local, FFT needs no transpose.
  const auto info = decompose(Layout("lexys"), paper_res(), 128);
  EXPECT_TRUE(info.x_local);
  EXPECT_TRUE(info.y_local);
  EXPECT_FALSE(info.needs_fft_transpose());
  EXPECT_TRUE(info.needs_velocity_transpose());
}

TEST(Decomp, BadRankCountsThrow) {
  EXPECT_THROW((void)decompose(Layout("lxyes"), paper_res(), 0),
               std::invalid_argument);
  Resolution tiny;
  tiny.ntheta = 2;
  tiny.negrid = 2;
  tiny.ny = 2;
  tiny.nl = 2;
  tiny.ns = 2;
  EXPECT_THROW((void)decompose(Layout("lxyes"), tiny, 1000),
               std::invalid_argument);
}

TEST(Decomp, ImbalanceAlwaysAtLeastOne) {
  for (const auto& layout : Layout::all()) {
    const auto info = decompose(layout, paper_res(), 96);
    EXPECT_GE(info.imbalance, 1.0) << layout.order();
  }
}

TEST(Decomp, DistributedDimsAreLayoutPrefix) {
  for (const auto& layout : Layout::all()) {
    const auto info = decompose(layout, paper_res(), 48);
    EXPECT_EQ(info.distributed,
              layout.order().substr(0, info.distributed.size()))
        << layout.order();
  }
}

// Parameterized sweep over rank counts: the decomposition must cover the
// rank count (product of distributed extents >= nranks) and stop as early
// as possible (dropping the innermost distributed dim would fall short).
class DecompCover : public ::testing::TestWithParam<int> {};

TEST_P(DecompCover, MinimalPrefix) {
  const int nranks = GetParam();
  const auto res = paper_res();
  for (const auto& layout : {Layout("lxyes"), Layout("yxles"), Layout("exsyl")}) {
    const auto info = decompose(layout, res, nranks);
    long long product = 1;
    for (const char d : info.distributed) product *= res.extent(d);
    EXPECT_GE(product, nranks) << layout.order();
    if (!info.distributed.empty()) {
      long long without_last = product / res.extent(info.distributed.back());
      EXPECT_LT(without_last, nranks) << layout.order();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DecompCover,
                         ::testing::Values(2, 8, 16, 64, 128, 256, 480));

}  // namespace
