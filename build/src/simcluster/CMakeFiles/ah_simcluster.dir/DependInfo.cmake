
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcluster/collectives.cpp" "src/simcluster/CMakeFiles/ah_simcluster.dir/collectives.cpp.o" "gcc" "src/simcluster/CMakeFiles/ah_simcluster.dir/collectives.cpp.o.d"
  "/root/repo/src/simcluster/machine.cpp" "src/simcluster/CMakeFiles/ah_simcluster.dir/machine.cpp.o" "gcc" "src/simcluster/CMakeFiles/ah_simcluster.dir/machine.cpp.o.d"
  "/root/repo/src/simcluster/presets.cpp" "src/simcluster/CMakeFiles/ah_simcluster.dir/presets.cpp.o" "gcc" "src/simcluster/CMakeFiles/ah_simcluster.dir/presets.cpp.o.d"
  "/root/repo/src/simcluster/simulator.cpp" "src/simcluster/CMakeFiles/ah_simcluster.dir/simulator.cpp.o" "gcc" "src/simcluster/CMakeFiles/ah_simcluster.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
