file(REMOVE_RECURSE
  "CMakeFiles/ah_simcluster.dir/collectives.cpp.o"
  "CMakeFiles/ah_simcluster.dir/collectives.cpp.o.d"
  "CMakeFiles/ah_simcluster.dir/machine.cpp.o"
  "CMakeFiles/ah_simcluster.dir/machine.cpp.o.d"
  "CMakeFiles/ah_simcluster.dir/presets.cpp.o"
  "CMakeFiles/ah_simcluster.dir/presets.cpp.o.d"
  "CMakeFiles/ah_simcluster.dir/simulator.cpp.o"
  "CMakeFiles/ah_simcluster.dir/simulator.cpp.o.d"
  "libah_simcluster.a"
  "libah_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
