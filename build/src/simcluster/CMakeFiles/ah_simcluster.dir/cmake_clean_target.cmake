file(REMOVE_RECURSE
  "libah_simcluster.a"
)
