# Empty dependencies file for ah_simcluster.
# This may be replaced when dependencies are built.
