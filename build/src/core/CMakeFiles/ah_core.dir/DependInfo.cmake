
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/ah_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/client.cpp.o.d"
  "/root/repo/src/core/constraint.cpp" "src/core/CMakeFiles/ah_core.dir/constraint.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/constraint.cpp.o.d"
  "/root/repo/src/core/coordinate_descent.cpp" "src/core/CMakeFiles/ah_core.dir/coordinate_descent.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/coordinate_descent.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/ah_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/core/CMakeFiles/ah_core.dir/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/exhaustive.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/ah_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/history.cpp.o.d"
  "/root/repo/src/core/nelder_mead.cpp" "src/core/CMakeFiles/ah_core.dir/nelder_mead.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/core/net.cpp" "src/core/CMakeFiles/ah_core.dir/net.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/net.cpp.o.d"
  "/root/repo/src/core/offline_driver.cpp" "src/core/CMakeFiles/ah_core.dir/offline_driver.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/offline_driver.cpp.o.d"
  "/root/repo/src/core/param_space.cpp" "src/core/CMakeFiles/ah_core.dir/param_space.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/param_space.cpp.o.d"
  "/root/repo/src/core/parameter.cpp" "src/core/CMakeFiles/ah_core.dir/parameter.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/parameter.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/ah_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/random_search.cpp" "src/core/CMakeFiles/ah_core.dir/random_search.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/random_search.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ah_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/report.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/ah_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/server.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/ah_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/session.cpp.o.d"
  "/root/repo/src/core/simulated_annealing.cpp" "src/core/CMakeFiles/ah_core.dir/simulated_annealing.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/simulated_annealing.cpp.o.d"
  "/root/repo/src/core/systematic_sampler.cpp" "src/core/CMakeFiles/ah_core.dir/systematic_sampler.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/systematic_sampler.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/ah_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/tuner.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/ah_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
