file(REMOVE_RECURSE
  "libah_minipetsc.a"
)
