
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minipetsc/cavity.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/cavity.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/cavity.cpp.o.d"
  "/root/repo/src/minipetsc/csr_matrix.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/csr_matrix.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/csr_matrix.cpp.o.d"
  "/root/repo/src/minipetsc/da.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/da.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/da.cpp.o.d"
  "/root/repo/src/minipetsc/ksp.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/ksp.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/ksp.cpp.o.d"
  "/root/repo/src/minipetsc/mat_gen.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/mat_gen.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/mat_gen.cpp.o.d"
  "/root/repo/src/minipetsc/partition.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/partition.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/partition.cpp.o.d"
  "/root/repo/src/minipetsc/pc.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/pc.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/pc.cpp.o.d"
  "/root/repo/src/minipetsc/perf_model.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/perf_model.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/perf_model.cpp.o.d"
  "/root/repo/src/minipetsc/snes.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/snes.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/snes.cpp.o.d"
  "/root/repo/src/minipetsc/vec.cpp" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/vec.cpp.o" "gcc" "src/minipetsc/CMakeFiles/ah_minipetsc.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
