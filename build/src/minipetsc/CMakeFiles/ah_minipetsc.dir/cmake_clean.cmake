file(REMOVE_RECURSE
  "CMakeFiles/ah_minipetsc.dir/cavity.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/cavity.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/csr_matrix.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/csr_matrix.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/da.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/da.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/ksp.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/ksp.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/mat_gen.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/mat_gen.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/partition.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/partition.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/pc.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/pc.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/perf_model.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/perf_model.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/snes.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/snes.cpp.o.d"
  "CMakeFiles/ah_minipetsc.dir/vec.cpp.o"
  "CMakeFiles/ah_minipetsc.dir/vec.cpp.o.d"
  "libah_minipetsc.a"
  "libah_minipetsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_minipetsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
