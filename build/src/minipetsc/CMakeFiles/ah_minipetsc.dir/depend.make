# Empty dependencies file for ah_minipetsc.
# This may be replaced when dependencies are built.
