
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minigs2/decomp.cpp" "src/minigs2/CMakeFiles/ah_minigs2.dir/decomp.cpp.o" "gcc" "src/minigs2/CMakeFiles/ah_minigs2.dir/decomp.cpp.o.d"
  "/root/repo/src/minigs2/gs2_model.cpp" "src/minigs2/CMakeFiles/ah_minigs2.dir/gs2_model.cpp.o" "gcc" "src/minigs2/CMakeFiles/ah_minigs2.dir/gs2_model.cpp.o.d"
  "/root/repo/src/minigs2/layout.cpp" "src/minigs2/CMakeFiles/ah_minigs2.dir/layout.cpp.o" "gcc" "src/minigs2/CMakeFiles/ah_minigs2.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
