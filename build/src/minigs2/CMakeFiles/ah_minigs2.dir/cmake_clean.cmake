file(REMOVE_RECURSE
  "CMakeFiles/ah_minigs2.dir/decomp.cpp.o"
  "CMakeFiles/ah_minigs2.dir/decomp.cpp.o.d"
  "CMakeFiles/ah_minigs2.dir/gs2_model.cpp.o"
  "CMakeFiles/ah_minigs2.dir/gs2_model.cpp.o.d"
  "CMakeFiles/ah_minigs2.dir/layout.cpp.o"
  "CMakeFiles/ah_minigs2.dir/layout.cpp.o.d"
  "libah_minigs2.a"
  "libah_minigs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_minigs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
