file(REMOVE_RECURSE
  "libah_minigs2.a"
)
