# Empty dependencies file for ah_minigs2.
# This may be replaced when dependencies are built.
