# Empty compiler generated dependencies file for ah_minipop.
# This may be replaced when dependencies are built.
