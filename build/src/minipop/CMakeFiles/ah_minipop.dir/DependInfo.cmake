
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minipop/blocks.cpp" "src/minipop/CMakeFiles/ah_minipop.dir/blocks.cpp.o" "gcc" "src/minipop/CMakeFiles/ah_minipop.dir/blocks.cpp.o.d"
  "/root/repo/src/minipop/grid.cpp" "src/minipop/CMakeFiles/ah_minipop.dir/grid.cpp.o" "gcc" "src/minipop/CMakeFiles/ah_minipop.dir/grid.cpp.o.d"
  "/root/repo/src/minipop/io_model.cpp" "src/minipop/CMakeFiles/ah_minipop.dir/io_model.cpp.o" "gcc" "src/minipop/CMakeFiles/ah_minipop.dir/io_model.cpp.o.d"
  "/root/repo/src/minipop/pop_model.cpp" "src/minipop/CMakeFiles/ah_minipop.dir/pop_model.cpp.o" "gcc" "src/minipop/CMakeFiles/ah_minipop.dir/pop_model.cpp.o.d"
  "/root/repo/src/minipop/pop_params.cpp" "src/minipop/CMakeFiles/ah_minipop.dir/pop_params.cpp.o" "gcc" "src/minipop/CMakeFiles/ah_minipop.dir/pop_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
