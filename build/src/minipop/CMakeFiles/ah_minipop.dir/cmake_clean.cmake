file(REMOVE_RECURSE
  "CMakeFiles/ah_minipop.dir/blocks.cpp.o"
  "CMakeFiles/ah_minipop.dir/blocks.cpp.o.d"
  "CMakeFiles/ah_minipop.dir/grid.cpp.o"
  "CMakeFiles/ah_minipop.dir/grid.cpp.o.d"
  "CMakeFiles/ah_minipop.dir/io_model.cpp.o"
  "CMakeFiles/ah_minipop.dir/io_model.cpp.o.d"
  "CMakeFiles/ah_minipop.dir/pop_model.cpp.o"
  "CMakeFiles/ah_minipop.dir/pop_model.cpp.o.d"
  "CMakeFiles/ah_minipop.dir/pop_params.cpp.o"
  "CMakeFiles/ah_minipop.dir/pop_params.cpp.o.d"
  "libah_minipop.a"
  "libah_minipop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_minipop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
