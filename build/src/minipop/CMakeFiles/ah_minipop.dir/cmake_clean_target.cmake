file(REMOVE_RECURSE
  "libah_minipop.a"
)
