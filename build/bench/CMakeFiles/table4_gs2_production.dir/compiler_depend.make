# Empty compiler generated dependencies file for table4_gs2_production.
# This may be replaced when dependencies are built.
