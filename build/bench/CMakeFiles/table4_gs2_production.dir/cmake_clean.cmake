file(REMOVE_RECURSE
  "CMakeFiles/table4_gs2_production.dir/table4_gs2_production.cpp.o"
  "CMakeFiles/table4_gs2_production.dir/table4_gs2_production.cpp.o.d"
  "table4_gs2_production"
  "table4_gs2_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gs2_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
