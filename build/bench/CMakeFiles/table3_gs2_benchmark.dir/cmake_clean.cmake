file(REMOVE_RECURSE
  "CMakeFiles/table3_gs2_benchmark.dir/table3_gs2_benchmark.cpp.o"
  "CMakeFiles/table3_gs2_benchmark.dir/table3_gs2_benchmark.cpp.o.d"
  "table3_gs2_benchmark"
  "table3_gs2_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gs2_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
