# Empty compiler generated dependencies file for table3_gs2_benchmark.
# This may be replaced when dependencies are built.
