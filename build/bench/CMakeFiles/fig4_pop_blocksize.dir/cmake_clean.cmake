file(REMOVE_RECURSE
  "CMakeFiles/fig4_pop_blocksize.dir/fig4_pop_blocksize.cpp.o"
  "CMakeFiles/fig4_pop_blocksize.dir/fig4_pop_blocksize.cpp.o.d"
  "fig4_pop_blocksize"
  "fig4_pop_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pop_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
