# Empty dependencies file for fig2_petsc_decomposition.
# This may be replaced when dependencies are built.
