file(REMOVE_RECURSE
  "CMakeFiles/fig2_petsc_decomposition.dir/fig2_petsc_decomposition.cpp.o"
  "CMakeFiles/fig2_petsc_decomposition.dir/fig2_petsc_decomposition.cpp.o.d"
  "fig2_petsc_decomposition"
  "fig2_petsc_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_petsc_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
