# Empty dependencies file for fig5_gs2_layout.
# This may be replaced when dependencies are built.
