file(REMOVE_RECURSE
  "CMakeFiles/fig5_gs2_layout.dir/fig5_gs2_layout.cpp.o"
  "CMakeFiles/fig5_gs2_layout.dir/fig5_gs2_layout.cpp.o.d"
  "fig5_gs2_layout"
  "fig5_gs2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gs2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
