file(REMOVE_RECURSE
  "CMakeFiles/ablation_simplex.dir/ablation_simplex.cpp.o"
  "CMakeFiles/ablation_simplex.dir/ablation_simplex.cpp.o.d"
  "ablation_simplex"
  "ablation_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
