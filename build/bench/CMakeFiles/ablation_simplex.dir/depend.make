# Empty dependencies file for ablation_simplex.
# This may be replaced when dependencies are built.
