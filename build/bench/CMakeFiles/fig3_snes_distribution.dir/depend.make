# Empty dependencies file for fig3_snes_distribution.
# This may be replaced when dependencies are built.
