
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_snes_distribution.cpp" "bench/CMakeFiles/fig3_snes_distribution.dir/fig3_snes_distribution.cpp.o" "gcc" "bench/CMakeFiles/fig3_snes_distribution.dir/fig3_snes_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/minipetsc/CMakeFiles/ah_minipetsc.dir/DependInfo.cmake"
  "/root/repo/build/src/minipop/CMakeFiles/ah_minipop.dir/DependInfo.cmake"
  "/root/repo/build/src/minigs2/CMakeFiles/ah_minigs2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
