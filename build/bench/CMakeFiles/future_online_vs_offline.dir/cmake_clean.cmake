file(REMOVE_RECURSE
  "CMakeFiles/future_online_vs_offline.dir/future_online_vs_offline.cpp.o"
  "CMakeFiles/future_online_vs_offline.dir/future_online_vs_offline.cpp.o.d"
  "future_online_vs_offline"
  "future_online_vs_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_online_vs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
