# Empty dependencies file for future_online_vs_offline.
# This may be replaced when dependencies are built.
