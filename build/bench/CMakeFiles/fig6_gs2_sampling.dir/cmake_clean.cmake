file(REMOVE_RECURSE
  "CMakeFiles/fig6_gs2_sampling.dir/fig6_gs2_sampling.cpp.o"
  "CMakeFiles/fig6_gs2_sampling.dir/fig6_gs2_sampling.cpp.o.d"
  "fig6_gs2_sampling"
  "fig6_gs2_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gs2_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
