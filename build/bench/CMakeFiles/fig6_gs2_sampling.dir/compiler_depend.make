# Empty compiler generated dependencies file for fig6_gs2_sampling.
# This may be replaced when dependencies are built.
