file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_constraint.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_constraint.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_evaluation.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_evaluation.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_history_tuner.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_history_tuner.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_nelder_mead.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_nelder_mead.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_net.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_net.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_offline_driver.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_offline_driver.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_param_space.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_param_space.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_parameter.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_parameter.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_protocol.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_protocol.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_report.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_report.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_rng.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_rng.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_server_client.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_server_client.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_session.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_session.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_strategies.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_strategies.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
