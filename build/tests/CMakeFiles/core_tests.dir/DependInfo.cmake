
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_constraint.cpp" "tests/CMakeFiles/core_tests.dir/core/test_constraint.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_constraint.cpp.o.d"
  "/root/repo/tests/core/test_evaluation.cpp" "tests/CMakeFiles/core_tests.dir/core/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_evaluation.cpp.o.d"
  "/root/repo/tests/core/test_history_tuner.cpp" "tests/CMakeFiles/core_tests.dir/core/test_history_tuner.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_history_tuner.cpp.o.d"
  "/root/repo/tests/core/test_nelder_mead.cpp" "tests/CMakeFiles/core_tests.dir/core/test_nelder_mead.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_nelder_mead.cpp.o.d"
  "/root/repo/tests/core/test_net.cpp" "tests/CMakeFiles/core_tests.dir/core/test_net.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_net.cpp.o.d"
  "/root/repo/tests/core/test_offline_driver.cpp" "tests/CMakeFiles/core_tests.dir/core/test_offline_driver.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_offline_driver.cpp.o.d"
  "/root/repo/tests/core/test_param_space.cpp" "tests/CMakeFiles/core_tests.dir/core/test_param_space.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_param_space.cpp.o.d"
  "/root/repo/tests/core/test_parameter.cpp" "tests/CMakeFiles/core_tests.dir/core/test_parameter.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_parameter.cpp.o.d"
  "/root/repo/tests/core/test_protocol.cpp" "tests/CMakeFiles/core_tests.dir/core/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_protocol.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/core_tests.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_rng.cpp" "tests/CMakeFiles/core_tests.dir/core/test_rng.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_rng.cpp.o.d"
  "/root/repo/tests/core/test_server_client.cpp" "tests/CMakeFiles/core_tests.dir/core/test_server_client.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_server_client.cpp.o.d"
  "/root/repo/tests/core/test_session.cpp" "tests/CMakeFiles/core_tests.dir/core/test_session.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_session.cpp.o.d"
  "/root/repo/tests/core/test_strategies.cpp" "tests/CMakeFiles/core_tests.dir/core/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/minipetsc/CMakeFiles/ah_minipetsc.dir/DependInfo.cmake"
  "/root/repo/build/src/minipop/CMakeFiles/ah_minipop.dir/DependInfo.cmake"
  "/root/repo/build/src/minigs2/CMakeFiles/ah_minigs2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
