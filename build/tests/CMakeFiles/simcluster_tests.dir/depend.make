# Empty dependencies file for simcluster_tests.
# This may be replaced when dependencies are built.
