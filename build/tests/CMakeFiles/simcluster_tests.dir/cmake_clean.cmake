file(REMOVE_RECURSE
  "CMakeFiles/simcluster_tests.dir/simcluster/test_collectives.cpp.o"
  "CMakeFiles/simcluster_tests.dir/simcluster/test_collectives.cpp.o.d"
  "CMakeFiles/simcluster_tests.dir/simcluster/test_machine.cpp.o"
  "CMakeFiles/simcluster_tests.dir/simcluster/test_machine.cpp.o.d"
  "CMakeFiles/simcluster_tests.dir/simcluster/test_simulator.cpp.o"
  "CMakeFiles/simcluster_tests.dir/simcluster/test_simulator.cpp.o.d"
  "simcluster_tests"
  "simcluster_tests.pdb"
  "simcluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
