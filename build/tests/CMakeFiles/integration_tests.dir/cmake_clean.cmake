file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/test_server_tuning.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_server_tuning.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_gs2.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_gs2.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_petsc.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_petsc.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_pop.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_tuning_pop.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
