file(REMOVE_RECURSE
  "CMakeFiles/minipop_tests.dir/minipop/test_blocks.cpp.o"
  "CMakeFiles/minipop_tests.dir/minipop/test_blocks.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/minipop/test_grid.cpp.o"
  "CMakeFiles/minipop_tests.dir/minipop/test_grid.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/minipop/test_io_model.cpp.o"
  "CMakeFiles/minipop_tests.dir/minipop/test_io_model.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/minipop/test_pop_model.cpp.o"
  "CMakeFiles/minipop_tests.dir/minipop/test_pop_model.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/minipop/test_pop_params.cpp.o"
  "CMakeFiles/minipop_tests.dir/minipop/test_pop_params.cpp.o.d"
  "minipop_tests"
  "minipop_tests.pdb"
  "minipop_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipop_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
