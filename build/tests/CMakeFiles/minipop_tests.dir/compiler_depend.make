# Empty compiler generated dependencies file for minipop_tests.
# This may be replaced when dependencies are built.
