
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minipop/test_blocks.cpp" "tests/CMakeFiles/minipop_tests.dir/minipop/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/minipop/test_blocks.cpp.o.d"
  "/root/repo/tests/minipop/test_grid.cpp" "tests/CMakeFiles/minipop_tests.dir/minipop/test_grid.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/minipop/test_grid.cpp.o.d"
  "/root/repo/tests/minipop/test_io_model.cpp" "tests/CMakeFiles/minipop_tests.dir/minipop/test_io_model.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/minipop/test_io_model.cpp.o.d"
  "/root/repo/tests/minipop/test_pop_model.cpp" "tests/CMakeFiles/minipop_tests.dir/minipop/test_pop_model.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/minipop/test_pop_model.cpp.o.d"
  "/root/repo/tests/minipop/test_pop_params.cpp" "tests/CMakeFiles/minipop_tests.dir/minipop/test_pop_params.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/minipop/test_pop_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/minipetsc/CMakeFiles/ah_minipetsc.dir/DependInfo.cmake"
  "/root/repo/build/src/minipop/CMakeFiles/ah_minipop.dir/DependInfo.cmake"
  "/root/repo/build/src/minigs2/CMakeFiles/ah_minigs2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
