# Empty dependencies file for minigs2_tests.
# This may be replaced when dependencies are built.
