file(REMOVE_RECURSE
  "CMakeFiles/minigs2_tests.dir/minigs2/test_decomp.cpp.o"
  "CMakeFiles/minigs2_tests.dir/minigs2/test_decomp.cpp.o.d"
  "CMakeFiles/minigs2_tests.dir/minigs2/test_gs2_model.cpp.o"
  "CMakeFiles/minigs2_tests.dir/minigs2/test_gs2_model.cpp.o.d"
  "CMakeFiles/minigs2_tests.dir/minigs2/test_layout.cpp.o"
  "CMakeFiles/minigs2_tests.dir/minigs2/test_layout.cpp.o.d"
  "minigs2_tests"
  "minigs2_tests.pdb"
  "minigs2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minigs2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
