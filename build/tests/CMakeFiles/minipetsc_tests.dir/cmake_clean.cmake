file(REMOVE_RECURSE
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_cavity.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_cavity.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_csr_matrix.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_csr_matrix.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_da.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_da.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_ksp.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_ksp.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_mat_gen.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_mat_gen.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_partition.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_partition.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_pc.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_pc.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_perf_model.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_perf_model.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_snes.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_snes.cpp.o.d"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_vec.cpp.o"
  "CMakeFiles/minipetsc_tests.dir/minipetsc/test_vec.cpp.o.d"
  "minipetsc_tests"
  "minipetsc_tests.pdb"
  "minipetsc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipetsc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
