# Empty dependencies file for minipetsc_tests.
# This may be replaced when dependencies are built.
