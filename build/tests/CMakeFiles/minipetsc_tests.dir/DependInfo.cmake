
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minipetsc/test_cavity.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_cavity.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_cavity.cpp.o.d"
  "/root/repo/tests/minipetsc/test_csr_matrix.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_csr_matrix.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_csr_matrix.cpp.o.d"
  "/root/repo/tests/minipetsc/test_da.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_da.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_da.cpp.o.d"
  "/root/repo/tests/minipetsc/test_ksp.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_ksp.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_ksp.cpp.o.d"
  "/root/repo/tests/minipetsc/test_mat_gen.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_mat_gen.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_mat_gen.cpp.o.d"
  "/root/repo/tests/minipetsc/test_partition.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_partition.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_partition.cpp.o.d"
  "/root/repo/tests/minipetsc/test_pc.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_pc.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_pc.cpp.o.d"
  "/root/repo/tests/minipetsc/test_perf_model.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_perf_model.cpp.o.d"
  "/root/repo/tests/minipetsc/test_snes.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_snes.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_snes.cpp.o.d"
  "/root/repo/tests/minipetsc/test_vec.cpp" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_vec.cpp.o" "gcc" "tests/CMakeFiles/minipetsc_tests.dir/minipetsc/test_vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/ah_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/minipetsc/CMakeFiles/ah_minipetsc.dir/DependInfo.cmake"
  "/root/repo/build/src/minipop/CMakeFiles/ah_minipop.dir/DependInfo.cmake"
  "/root/repo/build/src/minigs2/CMakeFiles/ah_minigs2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
