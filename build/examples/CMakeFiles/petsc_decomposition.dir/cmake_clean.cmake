file(REMOVE_RECURSE
  "CMakeFiles/petsc_decomposition.dir/petsc_decomposition.cpp.o"
  "CMakeFiles/petsc_decomposition.dir/petsc_decomposition.cpp.o.d"
  "petsc_decomposition"
  "petsc_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petsc_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
