# Empty dependencies file for petsc_decomposition.
# This may be replaced when dependencies are built.
