# Empty compiler generated dependencies file for tuning_server_demo.
# This may be replaced when dependencies are built.
