file(REMOVE_RECURSE
  "CMakeFiles/tuning_server_demo.dir/tuning_server_demo.cpp.o"
  "CMakeFiles/tuning_server_demo.dir/tuning_server_demo.cpp.o.d"
  "tuning_server_demo"
  "tuning_server_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_server_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
