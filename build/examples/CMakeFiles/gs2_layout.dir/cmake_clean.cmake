file(REMOVE_RECURSE
  "CMakeFiles/gs2_layout.dir/gs2_layout.cpp.o"
  "CMakeFiles/gs2_layout.dir/gs2_layout.cpp.o.d"
  "gs2_layout"
  "gs2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
