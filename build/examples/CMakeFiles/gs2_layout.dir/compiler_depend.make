# Empty compiler generated dependencies file for gs2_layout.
# This may be replaced when dependencies are built.
