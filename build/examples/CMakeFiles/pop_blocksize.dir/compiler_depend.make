# Empty compiler generated dependencies file for pop_blocksize.
# This may be replaced when dependencies are built.
