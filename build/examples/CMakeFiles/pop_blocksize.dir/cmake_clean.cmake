file(REMOVE_RECURSE
  "CMakeFiles/pop_blocksize.dir/pop_blocksize.cpp.o"
  "CMakeFiles/pop_blocksize.dir/pop_blocksize.cpp.o.d"
  "pop_blocksize"
  "pop_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
