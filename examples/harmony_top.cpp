// harmony_top: a `top`-style admin client for a live Harmony tuning server.
// It opens an ordinary protocol connection and polls the introspection verbs
// (STATUS / METRICS / LOG), pretty-printing the live session board (with
// per-session p50/p99 request latency), the fleet worker lanes (busy/idle,
// in-flight candidate, evals served, heartbeat age), the fleet-wide latency
// summary with its slow-request counter, a few headline metrics and the
// recent event log on every refresh.
//
//   harmony_top <port> [refreshes] [interval_ms]   attach to a running server
//   harmony_top                                    self-contained demo: starts
//                                                  a server plus a background
//                                                  tuning client, then watches
//
// The same verbs work from any tool that can speak "one line in, lines out"
// TCP — e.g. `printf 'METRICS\n' | nc 127.0.0.1 <port>` emits Prometheus
// text exposition ready for a scraper.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "core/client.hpp"
#include "core/server.hpp"
#include "minipop/minipop.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simcluster/simcluster.hpp"

namespace {

// Microseconds → short human latency string ("412us", "3.1ms", "1.2s").
std::string fmt_lat_us(double us) {
  char buf[32];
  if (us <= 0.0) return "-";
  if (us < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  } else if (us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", us / 1e6);
  }
  return buf;
}

/// Cumulative per-tenant eval counts from the previous refresh, so tenant
/// rows can show a live evals/s rate instead of a lifetime total.
struct TenantRates {
  std::map<std::string, double> prev_evals;
  std::chrono::steady_clock::time_point prev_at{};
  bool primed = false;
};

void print_status(const std::string& json, TenantRates& rates) {
  const auto doc = harmony::obs::json_parse(json);
  if (!doc || !doc->is_object()) {
    std::printf("  (unparseable STATUS reply)\n");
    return;
  }
  std::printf("  epoch %.0f, %.0f session(s) started\n",
              doc->number_or("epoch", 0), doc->number_or("sessions_started", 0));
  if (const auto* sessions = doc->find("sessions");
      sessions != nullptr && sessions->is_array()) {
    std::printf("  %-12s %-10s %-14s %-12s %6s %10s %7s %7s  %s\n", "SESSION",
                "APP", "STRATEGY", "PHASE", "ITER", "BEST", "P50", "P99",
                "CONFIG");
    for (const auto& s : sessions->as_array()) {
      const auto* best = s.find("best_value");
      const std::string best_str =
          best != nullptr && best->is_number()
              ? [&] {
                  char buf[32];
                  std::snprintf(buf, sizeof(buf), "%.5g", best->as_number());
                  return std::string(buf);
                }()
              : std::string("-");
      std::printf("  %-12s %-10s %-14s %-12s %6.0f %10s %7s %7s  %s\n",
                  s.string_or("id", "?").c_str(), s.string_or("app", "-").c_str(),
                  s.string_or("strategy", "-").c_str(),
                  s.string_or("phase", "-").c_str(), s.number_or("iterations", 0),
                  best_str.c_str(),
                  fmt_lat_us(s.number_or("p50_us", 0)).c_str(),
                  fmt_lat_us(s.number_or("p99_us", 0)).c_str(),
                  s.string_or("best_config", "").c_str());
    }
  }
  if (const auto* workers = doc->find("workers");
      workers != nullptr && workers->is_array() && !workers->as_array().empty()) {
    std::printf("  %-24s %4s %-5s %6s %8s  %s\n", "WORKER", "LANE", "STATE",
                "EVALS", "BEAT", "IN-FLIGHT");
    for (const auto& w : workers->as_array()) {
      const auto* busy = w.find("busy");
      const bool is_busy = busy != nullptr && busy->is_bool() && busy->as_bool();
      const auto* beat = w.find("beat_age_s");
      const std::string beat_str =
          beat != nullptr && beat->is_number()
              ? [&] {
                  char buf[32];
                  std::snprintf(buf, sizeof(buf), "%.1fs", beat->as_number());
                  return std::string(buf);
                }()
              : std::string("-");  // null: no heartbeat received yet
      std::printf("  %-24s %4.0f %-5s %6.0f %8s  %s\n",
                  w.string_or("pool", "?").c_str(), w.number_or("lane", 0),
                  is_busy ? "busy" : "idle", w.number_or("tasks", 0),
                  beat_str.c_str(), w.string_or("detail", "").c_str());
    }
  }
  if (const auto* tenants = doc->find("tenants");
      tenants != nullptr && tenants->is_array() && !tenants->as_array().empty()) {
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        rates.primed
            ? std::chrono::duration<double>(now - rates.prev_at).count()
            : 0.0;
    std::printf("  %-16s %8s %9s %7s %6s\n", "TENANT", "SESSIONS", "EVALS/S",
                "P99", "SHED");
    std::map<std::string, double> fresh;
    for (const auto& t : tenants->as_array()) {
      const std::string name = t.string_or("name", "?");
      const double evals = t.number_or("evals", 0);
      fresh[name] = evals;
      std::string rate = "-";
      if (dt > 0.0) {
        const auto it = rates.prev_evals.find(name);
        const double prev = it != rates.prev_evals.end() ? it->second : 0.0;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f",
                      std::max(0.0, evals - prev) / dt);
        rate = buf;
      }
      std::printf("  %-16s %8.0f %9s %7s %6.0f\n", name.c_str(),
                  t.number_or("sessions", 0), rate.c_str(),
                  fmt_lat_us(t.number_or("p99_us", 0)).c_str(),
                  t.number_or("shed", 0));
    }
    rates.prev_evals = std::move(fresh);
    rates.prev_at = now;
    rates.primed = true;
  }
  if (const auto* bp = doc->find("backpressure");
      bp != nullptr && bp->is_object()) {
    // Only worth a line when something is actually under pressure.
    const double pending = bp->number_or("pending_out_bytes", 0);
    const double paused = bp->number_or("paused", 0);
    const double reaped = bp->number_or("idle_reaped", 0);
    const double shed = bp->number_or("shed", 0);
    if (pending > 0 || paused > 0 || reaped > 0 || shed > 0) {
      std::printf(
          "  backpressure  %.0f B queued, %.0f conn(s) paused, "
          "%.0f reaped, %.0f shed\n",
          pending, paused, reaped, shed);
    }
  }
  if (const auto* lat = doc->find("latency");
      lat != nullptr && lat->is_object() && lat->number_or("count", 0) > 0) {
    std::printf(
        "  latency  p50 %s  p95 %s  p99 %s  (%.0f request(s), %.0f slow)\n",
        fmt_lat_us(lat->number_or("p50_us", 0)).c_str(),
        fmt_lat_us(lat->number_or("p95_us", 0)).c_str(),
        fmt_lat_us(lat->number_or("p99_us", 0)).c_str(),
        lat->number_or("count", 0), lat->number_or("slow_requests", 0));
  }
}

void print_metrics_headlines(const std::string& text) {
  // Show the server.* samples only; the full exposition can be long.
  std::size_t shown = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.rfind("ah_server_", 0) == 0 &&
        line.find("_bucket{") == std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (no server metrics yet — is AH_OBS=1?)\n");
}

int watch(harmony::TuningClient& admin, int refreshes, int interval_ms) {
  TenantRates rates;
  for (int i = 0; i < refreshes; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::printf("---- refresh %d/%d ----\n", i + 1, refreshes);
    if (const auto status = admin.status_json()) {
      print_status(*status, rates);
    } else {
      std::fprintf(stderr, "STATUS failed: %s\n", admin.last_error().c_str());
      return 1;
    }
    if (const auto metrics = admin.metrics_text()) {
      print_metrics_headlines(*metrics);
    }
    if (const auto events = admin.log_tail(5)) {
      for (const auto& e : *events) std::printf("  log %s\n", e.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int refreshes = argc > 2 ? std::atoi(argv[2]) : 5;
  const int interval_ms = argc > 3 ? std::atoi(argv[3]) : 500;

  if (argc > 1) {
    // Attach to an already-running server.
    harmony::TuningClient admin;
    if (!admin.connect(std::atoi(argv[1]), "harmony_top")) {
      std::fprintf(stderr, "connect failed: %s\n", admin.last_error().c_str());
      return 1;
    }
    const int rc = watch(admin, refreshes, interval_ms);
    admin.bye();
    return rc;
  }

  // Self-contained demo: server + a background tuning client to watch.
  harmony::obs::set_enabled(true);  // events + metrics for the demo
  harmony::TuningServer server;
  if (!server.start()) {
    std::fprintf(stderr, "could not start tuning server\n");
    return 1;
  }
  std::printf("harmony server listening on 127.0.0.1:%d\n", server.port());

  std::thread app([port = server.port()] {
    const minipop::PopGrid grid = minipop::PopGrid::production();
    const minipop::PopModel model(grid);
    const auto machine = simcluster::presets::hockney(8, 4);
    const auto space = minipop::make_param_space(32);

    harmony::TuningClient client;
    if (!client.connect(port, "pop")) return;
    if (!client.set_tenant("pop-demo")) return;  // shows up in the rollup
    bool ok = client.add_int("num_iotasks", 1, 32);
    for (const auto& spec : minipop::parameter_table()) {
      ok = ok && client.add_enum(spec.name, spec.choices);
    }
    if (!ok || !client.start(300)) return;
    while (auto config = client.fetch()) {
      const auto mult = minipop::evaluate_multipliers(space, *config);
      const double t = model.step_time(machine, 4, {180, 100}, mult).total_s;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (!client.report(t)) break;
    }
    client.bye();
  });

  harmony::TuningClient admin;
  int rc = 1;
  if (admin.connect(server.port(), "harmony_top")) {
    rc = watch(admin, refreshes, interval_ms);
    admin.bye();
  } else {
    std::fprintf(stderr, "admin connect failed: %s\n", admin.last_error().c_str());
  }
  app.join();
  server.stop();
  return rc;
}
