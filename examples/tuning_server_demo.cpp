// Client/server tuning demo (paper Fig. 1): the Harmony server runs as a
// separate service; the application links only the thin client stub and
// drives FETCH/REPORT rounds over loopback TCP. Here both ends live in one
// process for a self-contained demo; in a real deployment the server is a
// separate daemon shared by several applications.

// Usage: tuning_server_demo [strategy [key=value ...]]
// With no arguments the server's default Nelder-Mead search runs; naming a
// registered strategy negotiates it over the STRATEGY protocol verb first
// (e.g. `tuning_server_demo random samples=600 seed=7`).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/client.hpp"
#include "core/report.hpp"
#include "core/server.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  harmony::ServerOptions sopts;
  sopts.search.max_restarts = 4;
  sopts.search.max_stall = 80;
  harmony::TuningServer server(sopts);
  if (!server.start()) {
    std::fprintf(stderr, "could not start tuning server\n");
    return 1;
  }
  std::printf("harmony server listening on 127.0.0.1:%d\n", server.port());

  // The "application": POP step time as a function of its I/O and mixing
  // parameters, on Hockney (8 nodes x 4 CPUs).
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = simcluster::presets::hockney(8, 4);
  const auto space = make_param_space(32);

  harmony::TuningClient client;
  if (!client.connect(server.port(), "pop")) {
    std::fprintf(stderr, "connect failed: %s\n", client.last_error().c_str());
    return 1;
  }
  bool ok = client.add_int("num_iotasks", 1, 32);
  for (const auto& spec : parameter_table()) {
    ok = ok && client.add_enum(spec.name, spec.choices);
  }
  if (ok && argc > 1) {
    std::vector<std::pair<std::string, std::string>> options;
    for (int i = 2; i < argc; ++i) {
      const std::string tok = argv[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "bad option '%s' (expected key=value)\n",
                     tok.c_str());
        return 1;
      }
      options.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    ok = client.set_strategy(argv[1], options);
    if (ok) std::printf("negotiated strategy %s over STRATEGY verb\n", argv[1]);
  }
  ok = ok && client.start(300);
  if (!ok) {
    std::fprintf(stderr, "registration failed: %s\n", client.last_error().c_str());
    return 1;
  }

  // Steady state uses the combined REPORT+FETCH verb: one round trip per
  // evaluation instead of the two a report() + fetch() pair costs.
  double first = -1.0;
  int runs = 0;
  auto config = client.fetch();
  while (config) {
    const auto mult = evaluate_multipliers(space, *config);
    const double t = model.step_time(machine, 4, {180, 100}, mult).total_s;
    if (first < 0) first = t;
    ++runs;
    config = client.report_and_fetch(t);
  }

  const auto best = client.best();
  if (!best) {
    std::fprintf(stderr, "no best configuration: %s\n", client.last_error().c_str());
    return 1;
  }
  const double t_best =
      model.step_time(machine, 4, {180, 100}, evaluate_multipliers(space, *best))
          .total_s;
  std::printf("served %d fetch/report rounds over TCP\n", runs);
  std::printf("first configuration: %.4f s/step, best: %.4f s/step (%s)\n", first,
              t_best, harmony::percent_improvement(first, t_best).c_str());
  std::printf("best parameters: %s\n", space.format(*best).c_str());

  client.bye();
  server.stop();
  return 0;
}
