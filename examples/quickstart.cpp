// Quickstart: make an application tunable with the on-line Session API.
//
// The paper's instrumentation footprint is the point here — about ten lines:
// declare the tunable variables, then wrap the main loop in fetch()/report().
// Everything else (simplex search, caching, convergence) lives in the
// library.
//
// The "application" is a synthetic kernel whose runtime depends on a buffer
// size, a worker count and an algorithm choice; the session steers all three.

#include <cstdio>
#include <string>

#include "core/harmony.hpp"

namespace {

/// Simulated execution time of one work unit under the configuration.
double run_kernel(std::int64_t buffer_kb, std::int64_t workers,
                  const std::string& algorithm) {
  // Cache-friendly around 256 KB; diminishing returns past 8 workers; the
  // "merge" algorithm wins for this workload.
  const double cache_penalty =
      1.0 + 0.002 * std::abs(static_cast<double>(buffer_kb) - 256.0);
  const double parallel =
      1.0 / (0.15 + 0.85 * std::min<double>(static_cast<double>(workers), 8.0) / 8.0);
  const double alg = algorithm == "merge" ? 1.0 : algorithm == "quick" ? 1.15 : 1.6;
  return 0.01 * cache_penalty * parallel * alg;
}

}  // namespace

int main() {
  harmony::Session session("quickstart");

  // --- the ~10 lines of instrumentation -------------------------------
  std::int64_t buffer_kb = 64;
  std::int64_t workers = 1;
  std::string algorithm = "heap";
  session.add_int("buffer_kb", 16, 4096, 16, &buffer_kb);
  session.add_int("workers", 1, 16, 1, &workers);
  session.add_enum("algorithm", {"heap", "quick", "merge"}, &algorithm);

  while (session.fetch()) {
    const double elapsed = run_kernel(buffer_kb, workers, algorithm);
    session.report(elapsed);
  }
  // ---------------------------------------------------------------------

  std::printf("tuning finished after %d fetches\n", session.fetches());
  std::printf("best configuration: %s\n",
              session.space().format(*session.best()).c_str());
  std::printf("best simulated time: %.4f s per work unit\n",
              session.best_performance());
  std::printf("default would have been: %.4f s per work unit\n",
              run_kernel(64, 1, "heap"));
  return 0;
}
