// POP case study (paper Section V, Fig. 4): tune the ocean model's block
// size for a given machine topology using off-line representative short
// runs. One tuning iteration = one short benchmarking run of the model.

#include <cstdio>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipop;

int main() {
  const PopGrid grid = PopGrid::production();  // 3600 x 2400, 40 levels
  const PopModel model(grid);

  // 480 CPUs as 60 nodes x 8 CPUs (one of the paper's topologies).
  const int nodes = 60;
  const int ppn = 8;
  const auto machine = simcluster::presets::nersc_sp3(nodes, ppn);

  const auto pspace = make_param_space(32);
  const auto mult = evaluate_multipliers(pspace, default_config(pspace));

  const BlockShape default_shape{180, 100};
  const double t_default =
      model.run_time(machine, ppn, default_shape, mult, /*steps=*/10);
  std::printf("topology %dx%d, default block %dx%d: %.3f s per 10-step run\n",
              nodes, ppn, default_shape.bx, default_shape.by, t_default);

  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
  space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
  harmony::Config start = space.default_config();
  space.set(start, "block_x", std::int64_t{180});
  space.set(start, "block_y", std::int64_t{100});

  harmony::OfflineOptions oopts;
  oopts.short_run_steps = 10;   // "typical benchmarking run of 10 time steps"
  oopts.max_runs = 60;
  oopts.restart_overhead_s = 2.0;
  harmony::OfflineDriver driver(space, oopts);

  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  harmony::NelderMead nm(space, nm_opts, start);

  const auto result = driver.tune(nm, [&](const harmony::Config& c, int steps) {
    harmony::ShortRunResult r;
    const BlockShape shape{static_cast<int>(space.get_int(c, "block_x")),
                           static_cast<int>(space.get_int(c, "block_y"))};
    r.measured_s = model.run_time(machine, ppn, shape, mult, steps);
    r.warmup_s = 0.1 * r.measured_s;  // spin-up before the measured window
    return r;
  });

  std::printf("tuned block size: %s after %d short runs\n",
              space.format(*result.best).c_str(), result.runs);
  std::printf("tuned run time: %.3f s  (improvement %s; paper: up to 15%%)\n",
              result.best_measured_s,
              harmony::percent_improvement(t_default, result.best_measured_s)
                  .c_str());
  std::printf("total tuning bill (restarts + warmups + runs): %.1f s\n",
              result.total_tuning_cost_s);
  return 0;
}
