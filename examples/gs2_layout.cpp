// GS2 case study (paper Section VI, Fig. 5): tune the 5-D data layout of a
// gyrokinetic turbulence code. The layout decides which dimensions are
// distributed across processors, hence which phases need global transposes
// and how well the data aligns with the processor count.

#include <cstdio>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

using namespace minigs2;

int main() {
  const Gs2Model model;
  const auto machine = simcluster::presets::seaborg(8, 16);  // 128 CPUs
  const int nranks = 128;
  Resolution res;
  res.ntheta = 26;
  res.negrid = 16;

  const double t_default = model.run_time(machine, nranks, res, Layout("lxyes"),
                                          CollisionModel::None, 10);
  std::printf("default layout lxyes: %.2f s per 10-step benchmarking run\n",
              t_default);

  // All 120 permutations form the search space.
  std::vector<std::string> names;
  for (const auto& l : Layout::all()) names.push_back(l.order());
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Enum("layout", names));
  harmony::Config start = space.default_config();
  space.set(start, "layout", std::string("lxyes"));

  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 4;
  harmony::NelderMead nm(space, nm_opts, start);
  harmony::TunerOptions topts;
  topts.max_iterations = 50;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(nm, [&](const harmony::Config& c) {
    harmony::EvaluationResult r;
    r.objective = model.run_time(machine, nranks, res,
                                 Layout(std::get<std::string>(c.values[0])),
                                 CollisionModel::None, 10);
    return r;
  });

  const auto& best_layout = std::get<std::string>(result.best->values[0]);
  std::printf("tuned layout %s: %.2f s (speedup %s; paper: 3.4x)\n",
              best_layout.c_str(), result.best_result.objective,
              harmony::speedup(t_default, result.best_result.objective).c_str());

  const auto info = decompose(Layout(best_layout), res, nranks);
  std::printf("distributed dims: %s  (velocity space local: %s)\n",
              info.distributed.c_str(),
              info.l_local && info.e_local ? "yes" : "no");
  std::printf("tuning cost: %d distinct short runs\n", result.iterations);
  return 0;
}
