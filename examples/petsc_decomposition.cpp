// PETSc case study (paper Section IV, Fig. 2): tune the matrix decomposition
// boundaries of a parallel SLES solve. The matrix has dense diagonal blocks;
// boundaries that respect block edges keep communication local and make the
// block-Jacobi preconditioner exact, so the solver both communicates less
// and converges in fewer iterations.

#include <cmath>
#include <cstdio>

#include "core/harmony.hpp"
#include "minipetsc/minipetsc.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipetsc;

int main() {
  // Four dense blocks of uneven size on four processing nodes.
  const std::vector<int> block_sizes{140, 60, 120, 80};  // n = 400
  const auto A = dense_block_matrix(block_sizes, 0.6);
  const int n = A.rows();
  const int nranks = 4;
  const auto machine = simcluster::presets::pentium4_quad();

  Vec b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.05 * i);

  const auto solve_time = [&](const RowPartition& part) {
    Vec x;
    const PcBlockJacobi pc(A, part);
    const auto ksp = cg_solve(A, b, x, pc);
    const auto stats = analyze(A, part);
    const auto report = simulate_sles(machine, stats, std::max(1, ksp.iterations));
    return std::pair{report.total_s, ksp.iterations};
  };

  const auto even = RowPartition::even(n, nranks);
  const auto [t_default, it_default] = solve_time(even);
  std::printf("default decomposition %s\n",
              "(even 100-row partitions)");
  std::printf("  CG iterations: %d, simulated solve time: %.4f ms\n\n",
              it_default, 1e3 * t_default);

  // Tunable: the three partition boundaries.
  harmony::ParamSpace space;
  for (int i = 0; i < nranks - 1; ++i) {
    space.add(harmony::Parameter::Integer("boundary" + std::to_string(i), 1, n - 1));
  }
  harmony::Config start = space.default_config();
  const auto& eb = even.boundaries();
  for (int i = 0; i < nranks - 1; ++i) {
    space.set(start, "boundary" + std::to_string(i), std::int64_t{eb[static_cast<std::size_t>(i)]});
  }

  harmony::CoordinateDescent search(space, start, 20, /*line_samples=*/399);
  harmony::TunerOptions topts;
  topts.max_iterations = 5000;
  topts.max_proposals = 200000;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(search, [&](const harmony::Config& c) {
    std::vector<int> bounds;
    for (const auto& v : c.values) {
      bounds.push_back(static_cast<int>(std::get<std::int64_t>(v)));
    }
    harmony::EvaluationResult r;
    try {
      const auto part = RowPartition::from_boundaries(n, nranks, bounds);
      r.objective = solve_time(part).first;
    } catch (const std::invalid_argument&) {
      return harmony::EvaluationResult::infeasible();
    }
    return r;
  });

  std::printf("tuned decomposition after %d distinct runs:\n", result.iterations);
  std::printf("  boundaries: %s\n", space.format(*result.best).c_str());
  std::printf("  simulated solve time: %.4f ms\n", 1e3 * result.best_result.objective);
  std::printf("  improvement: %s (paper reports up to 18%%)\n",
              harmony::percent_improvement(t_default, result.best_result.objective)
                  .c_str());
  return 0;
}
