// Off-line iterative tuning with representative short runs — the tuning
// mechanism this paper adds to Active Harmony (Section III). The target is
// a GS2-style production configuration: parameters that are read once at
// startup (resolution, node count) cannot be changed on-line, so every
// tuning iteration stops the application, rewrites its configuration and
// relaunches a short benchmarking run. The driver bills every cost of that
// loop: restart overhead, warm-up, and the measured region itself.

#include <cstdio>

#include "core/harmony.hpp"
#include "engine/engine.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

using namespace minigs2;

int main() {
  const Gs2Model model;

  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 8, 16));
  space.add(harmony::Parameter::Integer("ntheta", 16, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));

  harmony::Config start = space.default_config();
  space.set(start, "negrid", std::int64_t{16});
  space.set(start, "ntheta", std::int64_t{26});
  space.set(start, "nodes", std::int64_t{32});

  const auto run_with = [&](const harmony::Config& c, int steps) {
    Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    return model.run_time(machine, 2 * nodes, res, Layout("lxyes"),
                          CollisionModel::None, steps);
  };

  const double t_default = run_with(start, 10);
  std::printf("default (negrid=16, ntheta=26, nodes=32): %.2f s benchmark run\n",
              t_default);

  harmony::OfflineOptions opts;
  opts.short_run_steps = 10;      // benchmarking runs, as in Table III
  opts.max_runs = 30;
  opts.restart_overhead_s = 15.0; // job relaunch on the cluster is not free
  harmony::OfflineDriver driver(space, opts);

  // Strategies are built by name through the registry — the same path the
  // tuning server's STRATEGY verb uses, with textual key=value options.
  const auto nm = harmony::StrategyRegistry::make(
      "nelder-mead", space, {{"max_restarts", "3"}}, start);

  const auto result = driver.tune(*nm, [&](const harmony::Config& c, int steps) {
    harmony::ShortRunResult r;
    r.measured_s = run_with(c, steps);
    r.warmup_s = 0.2 * r.measured_s;
    return r;
  });

  std::printf("tuned: %s\n", space.format(*result.best).c_str());
  std::printf("benchmark run: %.2f s (improvement %s; paper Table III: 57.9%%)\n",
              result.best_measured_s,
              harmony::percent_improvement(t_default, result.best_measured_s)
                  .c_str());
  std::printf("tuning consumed %d short runs costing %.1f s in total\n",
              result.runs, result.total_tuning_cost_s);

  // The payoff shows at production scale (1,000 steps, Table IV).
  const double prod_default = run_with(start, 1000);
  const double prod_tuned = run_with(*result.best, 1000);
  std::printf("production run: %.1f s -> %.1f s (improvement %s; paper: 83.5%%)\n",
              prod_default, prod_tuned,
              harmony::percent_improvement(prod_default, prod_tuned).c_str());

  // Same search through the parallel evaluation engine: the speculative
  // Nelder-Mead evaluates the reflection, expansion and both contractions
  // concurrently across a worker pool, landing on the identical simplex
  // trajectory while short runs overlap in wall-clock time. Duplicate or
  // revisited configurations are served by the engine's concurrent cache.
  harmony::engine::ParallelOfflineOptions popts;
  popts.short_run_steps = opts.short_run_steps;
  popts.max_runs = opts.max_runs;
  popts.restart_overhead_s = opts.restart_overhead_s;
  popts.pool_size = 4;
  harmony::engine::ParallelOfflineDriver pdriver(space, popts);
  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  harmony::engine::SpeculativeNelderMead spec(space, nm_opts, start);
  const auto presult = pdriver.tune(spec, [&](const harmony::Config& c, int steps) {
    harmony::ShortRunResult r;
    r.measured_s = run_with(c, steps);
    r.warmup_s = 0.2 * r.measured_s;
    return r;
  });
  std::printf("\nparallel engine (pool of %d, speculative simplex):\n",
              popts.pool_size);
  std::printf("tuned: %s = %.2f s in %d short runs over %d batches "
              "(%zu cache hits, %zu coalesced)\n",
              space.format(*presult.best).c_str(), presult.best_measured_s,
              presult.runs, presult.batches, presult.cache_hits,
              presult.cache_coalesced);
  return 0;
}
